#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/build_info.hpp"
#include "obs/json.hpp"

namespace oocs::obs {

namespace {

/// Bucket k counts values in [2^(k-1), 2^k) nanoseconds (bucket 0: < 1 ns).
int bucket_for(std::int64_t ns) noexcept {
  if (ns <= 0) return 0;
  const int width = std::bit_width(static_cast<std::uint64_t>(ns));
  return std::min(width, Histogram::kBuckets - 1);
}

double bucket_lower_ns(int bucket) noexcept {
  return bucket == 0 ? 0.0 : std::ldexp(1.0, bucket - 1);
}

double bucket_upper_ns(int bucket) noexcept { return std::ldexp(1.0, bucket); }

/// Relaxed CAS min/max for the extremes.
void atomic_min(std::atomic<std::int64_t>& target, std::int64_t value) noexcept {
  std::int64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& target, std::int64_t value) noexcept {
  std::int64_t current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record_seconds(double seconds) noexcept {
  record_ns(static_cast<std::int64_t>(std::max(0.0, seconds) * 1e9));
}

void Histogram::record_ns(std::int64_t ns) noexcept {
  ns = std::max<std::int64_t>(ns, 0);
  counts_[bucket_for(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(min_ns_, ns);
  atomic_max(max_ns_, ns);
}

void Histogram::Raw::merge(const Raw& other) noexcept {
  for (int b = 0; b < kBuckets; ++b) counts[b] += other.counts[b];
  count += other.count;
  sum_ns += other.sum_ns;
  min_ns = std::min(min_ns, other.min_ns);
  max_ns = std::max(max_ns, other.max_ns);
}

Histogram::Raw Histogram::raw() const {
  Raw raw;
  // Count from the bucket sum, not count_: the two can be mid-update
  // skewed under concurrent recording, and the quantile walk needs
  // ranks consistent with the buckets it walks.
  for (int b = 0; b < kBuckets; ++b) {
    raw.counts[b] = counts_[b].load(std::memory_order_relaxed);
    raw.count += raw.counts[b];
  }
  raw.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  raw.min_ns = min_ns_.load(std::memory_order_relaxed);
  raw.max_ns = max_ns_.load(std::memory_order_relaxed);
  return raw;
}

Histogram::Snapshot Histogram::summarize(const Raw& raw) {
  Snapshot snap;
  snap.count = raw.count;
  if (snap.count == 0) return snap;
  snap.sum_seconds = static_cast<double>(raw.sum_ns) * 1e-9;
  snap.min_seconds = static_cast<double>(raw.min_ns) * 1e-9;
  snap.max_seconds = static_cast<double>(raw.max_ns) * 1e-9;

  const auto quantile = [&](double q) {
    const double rank = q * static_cast<double>(snap.count);
    double cumulative = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (raw.counts[b] == 0) continue;
      const double next = cumulative + static_cast<double>(raw.counts[b]);
      if (next >= rank) {
        const double within = (rank - cumulative) / static_cast<double>(raw.counts[b]);
        const double lo = bucket_lower_ns(b);
        const double hi = bucket_upper_ns(b);
        return (lo + within * (hi - lo)) * 1e-9;
      }
      cumulative = next;
    }
    return snap.max_seconds;
  };
  snap.p50_seconds = quantile(0.50);
  snap.p90_seconds = quantile(0.90);
  snap.p99_seconds = quantile(0.99);

  for (int b = 0; b < kBuckets; ++b) {
    if (raw.counts[b] > 0) snap.buckets.emplace_back(bucket_upper_ns(b) * 1e-9, raw.counts[b]);
  }
  return snap;
}

double histogram_bucket_lower_seconds(int bucket) noexcept {
  return bucket_lower_ns(bucket) * 1e-9;
}

double histogram_bucket_upper_seconds(int bucket) noexcept {
  return bucket_upper_ns(bucket) * 1e-9;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    const auto it = gauges.find(name);
    if (it == gauges.end()) {
      gauges.emplace(name, value);
    } else {
      it->second = std::max(it->second, value);
    }
  }
  for (const auto& [name, raw] : other.histograms) histograms[name].merge(raw);
}

void Histogram::reset() noexcept {
  for (auto& bucket : counts_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(std::numeric_limits<std::int64_t>::max(), std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->set(0);
  for (auto& [name, gauge] : gauges_) gauge->set(0);
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsSnapshot MetricsRegistry::take_snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) snapshot.counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : gauges_) snapshot.gauges.emplace(name, gauge->value());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->raw());
  }
  return snapshot;
}

MetricsRegistry::InstrumentRefs MetricsRegistry::instrument_refs() const {
  const std::scoped_lock lock(mutex_);
  InstrumentRefs refs;
  for (const auto& [name, counter] : counters_) refs.counters.emplace_back(name, counter.get());
  for (const auto& [name, gauge] : gauges_) refs.gauges.emplace_back(name, gauge.get());
  for (const auto& [name, histogram] : histograms_) {
    refs.histograms.emplace_back(name, histogram.get());
  }
  return refs;
}

std::string snapshot_json(const MetricsSnapshot& snapshot, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  std::string out;

  out += pad + "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    out += pad2 + json_quote(name) + ": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n" + pad + "},\n";

  out += pad + "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    out += pad2 + json_quote(name) + ": " + json_number(value, 9);
    first = false;
  }
  out += first ? "},\n" : "\n" + pad + "},\n";

  out += pad + "\"histograms\": {";
  first = true;
  for (const auto& [name, raw] : snapshot.histograms) {
    const Histogram::Snapshot snap = Histogram::summarize(raw);
    out += first ? "\n" : ",\n";
    first = false;
    out += pad2 + json_quote(name) + ": {\"count\": " + std::to_string(snap.count) +
           ", \"sum_seconds\": " + json_number(snap.sum_seconds, 9) +
           ", \"min_seconds\": " + json_number(snap.min_seconds, 9) +
           ", \"max_seconds\": " + json_number(snap.max_seconds, 9) +
           ", \"p50_seconds\": " + json_number(snap.p50_seconds, 9) +
           ", \"p90_seconds\": " + json_number(snap.p90_seconds, 9) +
           ", \"p99_seconds\": " + json_number(snap.p99_seconds, 9) + ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [le, count] : snap.buckets) {
      if (!first_bucket) out += ", ";
      out += "{\"le_seconds\": " + json_number(le, 9) + ", \"count\": " + std::to_string(count) +
             "}";
      first_bucket = false;
    }
    out += "]}";
  }
  out += first ? "}" : "\n" + pad + "}";
  return out;
}

std::string MetricsRegistry::to_json(int indent) const {
  return snapshot_json(take_snapshot(), indent);
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: outlives static dtors
  return *registry;
}

void write_metrics_json(std::ostream& os, const MetricsRegistry& registry) {
  os << "{\n  \"build\": " << build_info_json() << ",\n" << registry.to_json(2) << "\n}\n";
}

}  // namespace oocs::obs
