// Process-wide monotonic clock and thread/process identity.
//
// Every observability consumer — the trace recorder, the leveled
// logger, the disk arrays' busy-interval union — shares one monotonic
// epoch, so log timestamps, span timestamps and measured disk seconds
// all live on the same time axis and line up in a Perfetto view.
//
// Thread identity is a small dense index (1, 2, 3, ... in first-use
// order), far more readable in logs and traces than std::thread::id.
// The "proc" is the GA-style virtual process a thread works for:
// ga::run_threads runs each plan process on one thread and tags it (and
// the aio/compute worker threads it spawns inherit the tag), so a
// multi-proc run drains into one Chrome trace with a pid row per proc.
#pragma once

#include <cstdint>

namespace oocs::obs {

/// Nanoseconds since the process-wide monotonic epoch (first use).
[[nodiscard]] std::int64_t monotonic_ns() noexcept;

/// Seconds since the same epoch.
[[nodiscard]] double monotonic_seconds() noexcept;

/// Small dense id of the calling thread (1-based, assigned on first
/// use, stable for the thread's lifetime).
[[nodiscard]] int thread_index() noexcept;

/// GA-style virtual process this thread works for (default 0).  Worker
/// pools stamp their threads with the creator's proc at spawn.
[[nodiscard]] int current_proc() noexcept;
void set_current_proc(int proc) noexcept;

}  // namespace oocs::obs
