#include "obs/clock.hpp"

#include <atomic>
#include <chrono>

namespace oocs::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point epoch() noexcept {
  static const Clock::time_point start = Clock::now();
  return start;
}

std::atomic<int>& next_thread_index() noexcept {
  static std::atomic<int> next{1};
  return next;
}

thread_local int t_thread_index = 0;
thread_local int t_proc = 0;

}  // namespace

std::int64_t monotonic_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch()).count();
}

double monotonic_seconds() noexcept {
  return std::chrono::duration<double>(Clock::now() - epoch()).count();
}

int thread_index() noexcept {
  if (t_thread_index == 0) {
    t_thread_index = next_thread_index().fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_index;
}

int current_proc() noexcept { return t_proc; }

void set_current_proc(int proc) noexcept { t_proc = proc; }

}  // namespace oocs::obs
