#include "obs/build_info.hpp"

#include "obs/json.hpp"

#ifndef OOCS_GIT_DESCRIBE
#define OOCS_GIT_DESCRIBE "unknown"
#endif
#ifndef OOCS_BUILD_TYPE
#define OOCS_BUILD_TYPE "unknown"
#endif

namespace oocs::obs {

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_describe = OOCS_GIT_DESCRIBE;
    b.build_type = OOCS_BUILD_TYPE;
    // Threads, async I/O and the tile cache are always compiled in;
    // tracing can be compiled out with -DOOCS_DISABLE_TRACING.
    b.features = "threads async cache";
#ifndef OOCS_DISABLE_TRACING
    b.features += " tracing";
#endif
    return b;
  }();
  return info;
}

std::string build_info_string() {
  const BuildInfo& b = build_info();
  return b.git_describe + " (" + b.build_type + "; " + b.features + ")";
}

std::string build_info_json() {
  const BuildInfo& b = build_info();
  return "{\"git\": " + json_quote(b.git_describe) +
         ", \"build_type\": " + json_quote(b.build_type) +
         ", \"features\": " + json_quote(b.features) + "}";
}

}  // namespace oocs::obs
