#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <limits>

#include "obs/asf_format.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oocs::obs {

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};

std::atomic<bool> g_installed{false};
std::atomic<bool> g_dumping{false};
char g_path[512] = {};
int g_max_spans = 64;

// Pre-rendered at install time: '{"postmortem": 1, "git": "...",
// ..., "signal": ' — the handler appends the number and '}'.
std::string* g_header = nullptr;  // leaked: must outlive everything

// The frozen instrument table (leaked on refresh: an old table may
// still be mid-read by a crashing thread).
std::atomic<const MetricsRegistry::InstrumentRefs*> g_refs{nullptr};

void handler(int sig) {
  if (!g_dumping.exchange(true)) {
    const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      write_postmortem(fd, sig);
      ::close(fd);
    }
  }
  // Die with the original signal: restore the default disposition and
  // re-raise.  The signal is blocked for the duration of this handler,
  // so the re-raise is delivered — with default action — on return.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void write_postmortem(int fd, int signal) noexcept {
  if (g_header != nullptr) {
    asf::write_str(fd, g_header->c_str());
  } else {
    asf::write_str(fd, "{\"postmortem\": 1, \"signal\": ");
  }
  asf::write_int(fd, signal);
  asf::write_str(fd, "}\n");

  const MetricsRegistry::InstrumentRefs* refs = g_refs.load(std::memory_order_acquire);
  if (refs != nullptr) {
    for (const auto& [name, counter] : refs->counters) {
      asf::write_str(fd, "{\"kind\": \"metric\", \"type\": \"counter\", \"name\": \"");
      asf::write_json_str(fd, name.c_str(), name.size());
      asf::write_str(fd, "\", \"value\": ");
      asf::write_int(fd, counter->value());
      asf::write_str(fd, "}\n");
    }
    for (const auto& [name, gauge] : refs->gauges) {
      asf::write_str(fd, "{\"kind\": \"metric\", \"type\": \"gauge\", \"name\": \"");
      asf::write_json_str(fd, name.c_str(), name.size());
      asf::write_str(fd, "\", \"value\": ");
      asf::write_fixed(fd, gauge->value());
      asf::write_str(fd, "}\n");
    }
    for (const auto& [name, histogram] : refs->histograms) {
      // Histogram::raw() is relaxed atomic loads into a stack POD —
      // signal-safe, unlike summarize() (allocates).
      const Histogram::Raw raw = histogram->raw();
      asf::write_str(fd, "{\"kind\": \"metric\", \"type\": \"histogram\", \"name\": \"");
      asf::write_json_str(fd, name.c_str(), name.size());
      asf::write_str(fd, "\", \"count\": ");
      asf::write_int(fd, raw.count);
      asf::write_str(fd, ", \"sum_ns\": ");
      asf::write_int(fd, raw.sum_ns);
      asf::write_str(fd, ", \"min_ns\": ");
      asf::write_int(fd, raw.count > 0 ? raw.min_ns : 0);
      asf::write_str(fd, ", \"max_ns\": ");
      asf::write_int(fd, raw.max_ns);
      asf::write_str(fd, "}\n");
    }
  }

  detail::crash_dump_events(fd, g_max_spans);
  asf::write_str(fd, "{\"postmortem_end\": 1}\n");
}

void flight_recorder_refresh() {
  auto* refs = new MetricsRegistry::InstrumentRefs(metrics().instrument_refs());
  g_refs.store(refs, std::memory_order_release);
}

void install_flight_recorder(const FlightRecorderOptions& options) {
  std::strncpy(g_path, options.path.c_str(), sizeof(g_path) - 1);
  g_path[sizeof(g_path) - 1] = '\0';
  g_max_spans = options.max_spans_per_thread;

  const BuildInfo& build = build_info();
  // Build strings come from -D defines and carry no quotes/backslashes;
  // sanitize anyway so the header stays valid JSON no matter what.
  const auto sanitized = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) out += (c >= 0x20 && c <= 0x7e && c != '"' && c != '\\') ? c : '_';
    return out;
  };
  auto* header = new std::string("{\"postmortem\": 1, \"git\": \"" + sanitized(build.git_describe) +
                                 "\", \"build_type\": \"" + sanitized(build.build_type) +
                                 "\", \"features\": \"" + sanitized(build.features) +
                                 "\", \"signal\": ");
  g_header = header;

  flight_recorder_refresh();
  detail::crash_arm_buffers();

  if (!g_installed.exchange(true)) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = handler;
    sigemptyset(&action.sa_mask);
    for (const int sig : kFatalSignals) ::sigaction(sig, &action, nullptr);
  }
}

bool flight_recorder_installed() noexcept {
  return g_installed.load(std::memory_order_relaxed);
}

}  // namespace oocs::obs
