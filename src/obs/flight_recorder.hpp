// Crash flight recorder: a last-gasp postmortem writer for fatal
// signals.
//
// install_flight_recorder hooks SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT.
// When one fires, an async-signal-safe handler writes an NDJSON
// artifact to the configured path — build identity and the fatal
// signal number, the current value of every metrics instrument frozen
// at install/refresh time, and the newest spans from every thread's
// trace ring — then restores the default disposition and re-raises, so
// the process still dies with the original signal (wait status intact
// for the launcher's ProcessGroup diagnostics).
//
// Safety model inside the handler: write(2) + stack buffers only
// (obs/asf_format.hpp), relaxed atomic loads from instruments, and
// lock-free reads of the trace rings that crash_arm_buffers pinned in
// place.  No allocation, no locks, no stdio.  Everything that needs
// the heap (the artifact path, the pre-rendered build header, the
// instrument pointer table) is prepared at install time.
//
// tools/check_metrics.py --postmortem validates the artifact;
// tests/obs_test.cpp provokes a real child crash through
// ga::ProcessGroup and checks both the wait status and the artifact.
#pragma once

#include <string>

namespace oocs::obs {

struct FlightRecorderOptions {
  /// Postmortem artifact path (NDJSON, overwritten on crash).
  std::string path;
  /// Newest spans dumped per thread ring.
  int max_spans_per_thread = 64;
};

/// Installs the fatal-signal handlers (idempotent; a second call
/// re-points the artifact path and re-freezes the instrument table).
/// Also arms the trace rings (detail::crash_arm_buffers).
void install_flight_recorder(const FlightRecorderOptions& options);

[[nodiscard]] bool flight_recorder_installed() noexcept;

/// Re-freezes the instrument table the handler reads.  Instruments
/// registered after the last install/refresh are invisible to the
/// handler (it cannot take the registry mutex), so long-running
/// processes may refresh at phase boundaries.
void flight_recorder_refresh();

/// The artifact body writer the handler runs after opening the file —
/// async-signal-safe; exposed so tests can exercise it without dying.
void write_postmortem(int fd, int signal) noexcept;

}  // namespace oocs::obs
