// Build identity stamped into every trace / metrics / stats JSON and
// printed by `oocsc --version`, so an archived artifact always says
// which code produced it.
//
// The git describe string and build type are injected by CMake as
// compile definitions on oocs_obs (OOCS_GIT_DESCRIBE, OOCS_BUILD_TYPE);
// the feature list reflects the compile-time configuration.
#pragma once

#include <string>

namespace oocs::obs {

struct BuildInfo {
  std::string git_describe;  // `git describe --always --dirty --tags`
  std::string build_type;    // CMAKE_BUILD_TYPE
  std::string features;      // space-separated: "threads async cache tracing"
};

/// The process's build identity (computed once).
[[nodiscard]] const BuildInfo& build_info();

/// One-line form: "<git> (<build_type>; <features>)".
[[nodiscard]] std::string build_info_string();

/// The build-info block as a JSON object (no trailing newline), e.g.
/// {"git": "...", "build_type": "...", "features": "..."} — spliced
/// into JSON documents under a "build" key.
[[nodiscard]] std::string build_info_json();

}  // namespace oocs::obs
