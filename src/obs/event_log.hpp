// Bounded structured event log: thread-safe NDJSON appender with
// deterministic size-based rotation.
//
// serve::Engine writes one record per terminal response (request id,
// queue wait, batch id, cache outcome, warm-start source, solver
// evaluations, wall time) so a long-running oocsd leaves a greppable
// request history next to its metrics.  Rotation is deterministic: a
// record that would push the current file past `max_bytes` first
// shifts path → path.1 → … → path.<max_rotations> (the oldest file
// falls off), then lands as the first record of a fresh file — no
// record is ever split across files.
//
// Appends count into the process metrics registry
// ("obs.event_log.records", "obs.event_log.rotations",
// "obs.event_log.errors"), so the telemetry plane can see its own
// write path.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

namespace oocs::obs {

class Counter;

class EventLog {
 public:
  struct Options {
    std::string path;
    /// Rotate before a write would push the file past this size.
    std::int64_t max_bytes = std::int64_t{1} << 20;
    /// Rotated generations kept (path.1 … path.N); 0 truncates in place.
    int max_rotations = 3;
  };

  explicit EventLog(Options options);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one NDJSON record (`line` should not carry the trailing
  /// newline).  Thread-safe; never throws — write failures count into
  /// "obs.event_log.errors" and drop the record.
  void append(std::string_view line) noexcept;

  void flush() noexcept;

  [[nodiscard]] const std::string& path() const noexcept { return options_.path; }
  [[nodiscard]] std::int64_t bytes_written() const noexcept;
  [[nodiscard]] std::int64_t rotations() const noexcept;

 private:
  void rotate_locked();

  Options options_;
  mutable std::mutex mutex_;
  std::ofstream os_;
  std::int64_t bytes_ = 0;
  std::int64_t total_rotations_ = 0;
  Counter* records_counter_ = nullptr;
  Counter* rotations_counter_ = nullptr;
  Counter* errors_counter_ = nullptr;
};

}  // namespace oocs::obs
