// Minimal JSON emission helpers shared by the trace / metrics / drift
// writers.  Emission only — parsing lives in tools/check_trace.py.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace oocs::obs {

/// Appends `text` to `out` with JSON string escaping (quotes,
/// backslashes, control characters).
inline void json_escape_to(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] inline std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  json_escape_to(out, text);
  out += '"';
  return out;
}

/// Formats a double as a JSON-safe number (finite; fixed precision).
[[nodiscard]] inline std::string json_number(double value, int precision = 6) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace oocs::obs
