#include "obs/event_log.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace oocs::obs {

EventLog::EventLog(Options options) : options_(std::move(options)) {
  records_counter_ = &metrics().counter("obs.event_log.records");
  rotations_counter_ = &metrics().counter("obs.event_log.rotations");
  errors_counter_ = &metrics().counter("obs.event_log.errors");
  os_.open(options_.path, std::ios::out | std::ios::trunc);
  if (!os_) errors_counter_->add();
}

EventLog::~EventLog() { flush(); }

void EventLog::append(std::string_view line) noexcept {
  const std::scoped_lock lock(mutex_);
  const std::int64_t record_bytes = static_cast<std::int64_t>(line.size()) + 1;
  if (bytes_ > 0 && bytes_ + record_bytes > options_.max_bytes) rotate_locked();
  if (!os_) {
    errors_counter_->add();
    return;
  }
  os_.write(line.data(), static_cast<std::streamsize>(line.size()));
  os_.put('\n');
  if (!os_) {
    errors_counter_->add();
    return;
  }
  bytes_ += record_bytes;
  records_counter_->add();
}

void EventLog::flush() noexcept {
  const std::scoped_lock lock(mutex_);
  if (os_) os_.flush();
}

std::int64_t EventLog::bytes_written() const noexcept {
  const std::scoped_lock lock(mutex_);
  return bytes_;
}

std::int64_t EventLog::rotations() const noexcept {
  const std::scoped_lock lock(mutex_);
  return total_rotations_;
}

void EventLog::rotate_locked() {
  os_.close();
  // Shift the generation chain from the oldest end: path.(N-1) → path.N,
  // …, path → path.1.  With max_rotations == 0 the current file is
  // simply truncated.
  if (options_.max_rotations > 0) {
    for (int gen = options_.max_rotations - 1; gen >= 0; --gen) {
      const std::string from =
          gen == 0 ? options_.path : options_.path + "." + std::to_string(gen);
      const std::string to = options_.path + "." + std::to_string(gen + 1);
      std::rename(from.c_str(), to.c_str());  // missing generations are fine
    }
  }
  os_.open(options_.path, std::ios::out | std::ios::trunc);
  if (!os_) errors_counter_->add();
  bytes_ = 0;
  ++total_rotations_;
  rotations_counter_->add();
}

}  // namespace oocs::obs
