// Live-telemetry exposition of the MetricsRegistry.
//
// Two output forms sit on top of obs::MetricsSnapshot:
//
//  * Prometheus-style text (write_prometheus / prometheus_text): every
//    counter becomes an `oocs_<name>_total` sample, every gauge an
//    `oocs_<name>` sample, and every histogram a cumulative
//    `_bucket{le="..."}` series (log2-of-nanoseconds boundaries, in
//    seconds) with `_sum`/`_count`, interpolated quantile samples
//    (`{quantile="0.5|0.9|0.99"}`) and `_min`/`_max` — plus one
//    `oocs_build_info{git=...,build_type=...,features=...} 1` identity
//    sample.  Dotted metric names sanitize to underscores.  oocsd
//    serves this over `{"cmd": "metrics"}` and `GET /metrics`;
//    tools/check_metrics.py validates it.
//
//  * Binary metrics fragments (write_metrics_fragment /
//    load_metrics_fragment): a worker process's registry snapshot
//    serialized next to its trace fragments, pid-tagged the same way.
//    write_merged_metrics_json splices the parent registry and every
//    fragment into one document with per-proc sections and an
//    aggregate view (counters sum, histograms merge bucket-wise, then
//    quantiles are recomputed) — the `--proc-backend procs` metrics
//    artifact.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace oocs::obs {

/// Prometheus text exposition of one snapshot (see file header).
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

/// The exposition of a live registry as one string (what the daemon
/// serves).  Lock-free instruments make this safe mid-traffic.
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry = metrics());

/// One worker's registry snapshot, tagged like a trace fragment.
struct MetricsFragment {
  int proc = 0;    ///< virtual proc (GA rank) of the writer
  int os_pid = 0;  ///< OS pid of the writer
  MetricsSnapshot snapshot;
};

/// Serializes the registry into a self-contained binary fragment for
/// later merging (the ga::run_procs workers; format in exposition.cpp).
void write_metrics_fragment(std::ostream& os, const MetricsRegistry& registry = metrics());

/// Parses one fragment file.  Unreadable/malformed fragments throw
/// oocs::Error.
[[nodiscard]] MetricsFragment load_metrics_fragment(const std::string& path);

/// The merged multi-process metrics document: build header, the
/// aggregate series at the top level (parent + every fragment — a
/// strict superset of write_metrics_json's schema), a "parent" section
/// and one pid-tagged "procs" entry per fragment.
void write_merged_metrics_json(std::ostream& os, const std::vector<std::string>& fragment_paths,
                               const MetricsRegistry& registry = metrics());

}  // namespace oocs::obs
