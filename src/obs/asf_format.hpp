// Async-signal-safe formatting and write helpers for the crash flight
// recorder (obs/flight_recorder.hpp): no allocation, no locale, no
// stdio, no locks — only write(2) and stack buffers, so they are
// callable from a fatal-signal handler.
#pragma once

#include <unistd.h>

#include <cstdint>
#include <cstring>

namespace oocs::obs::asf {

/// Best-effort full write; silently stops on error (there is nowhere
/// to report a failure from inside a signal handler).
inline void write_raw(int fd, const char* data, std::size_t len) noexcept {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

inline void write_str(int fd, const char* s) noexcept { write_raw(fd, s, std::strlen(s)); }

inline void write_int(int fd, std::int64_t value) noexcept {
  char buf[24];
  char* p = buf + sizeof(buf);
  const bool negative = value < 0;
  std::uint64_t v =
      negative ? 0 - static_cast<std::uint64_t>(value) : static_cast<std::uint64_t>(value);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  if (negative) *--p = '-';
  write_raw(fd, p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

/// Fixed-point double with 6 fractional digits — enough for gauge
/// readings; NaN and out-of-range values clamp rather than trap.
inline void write_fixed(int fd, double value) noexcept {
  if (value != value) {
    write_str(fd, "0");
    return;
  }
  if (value < 0) {
    write_str(fd, "-");
    value = -value;
  }
  if (value > 9.2e18) value = 9.2e18;
  std::int64_t whole = static_cast<std::int64_t>(value);
  std::int64_t frac =
      static_cast<std::int64_t>((value - static_cast<double>(whole)) * 1e6 + 0.5);
  if (frac >= 1000000) {
    frac -= 1000000;
    ++whole;
  }
  write_int(fd, whole);
  char buf[8] = {'.', '0', '0', '0', '0', '0', '0'};
  for (int i = 6; i >= 1; --i) {
    buf[i] = static_cast<char>('0' + frac % 10);
    frac /= 10;
  }
  write_raw(fd, buf, 7);
}

/// JSON string body: printable ASCII minus quote/backslash passes
/// through, every other byte becomes '_' (no escaping machinery in a
/// signal handler; the input may be a torn read of another thread's
/// buffer, so it is sanitized rather than trusted).
inline void write_json_str(int fd, const char* s, std::size_t max_len) noexcept {
  char buf[256];
  if (max_len > sizeof(buf)) max_len = sizeof(buf);
  std::size_t n = 0;
  for (; n < max_len && s[n] != '\0'; ++n) {
    const char c = s[n];
    buf[n] = (c >= 0x20 && c <= 0x7e && c != '"' && c != '\\') ? c : '_';
  }
  write_raw(fd, buf, n);
}

}  // namespace oocs::obs::asf
