// Out-of-core matrix transposition.
//
// The substrate study behind the paper's minimum-block-size constraint:
// Krishnamoorthy et al., "On Efficient Out-of-core Matrix Transposition"
// (OSU-CISRC-9/03-TR52, the paper's ref [37]) observed that beyond a
// system-dependent block size the transfer-to-seek ratio stops
// improving, giving the 2 MB-read / 1 MB-write constants of §4.2.
//
// This is the classical blocked algorithm: split the matrix into
// B×B tiles with 2·B² doubles fitting the buffer budget, read a tile,
// transpose in memory, write it to the mirrored position.
#pragma once

#include <cstdint>

#include "dra/disk_array.hpp"

namespace oocs::dra {

struct TransposeStats {
  std::int64_t tile = 0;         // chosen tile edge
  std::int64_t tiles_moved = 0;  // number of tiles processed
  IoStats io;                    // aggregated over both arrays
};

/// Transposes 2-D `in` (R×C) into `out` (C×R) using at most
/// `buffer_bytes` of in-memory buffers.  Works on any backend; with
/// SimDiskArray it only accounts I/O.  Throws SpecError on rank/extent
/// mismatches or a budget below two elements.
TransposeStats transpose_out_of_core(DiskArray& in, DiskArray& out,
                                     std::int64_t buffer_bytes);

/// In-memory tile transpose helper (exposed for tests/benches):
/// dst[c][r] = src[r][c] for an r×c row-major tile.
void transpose_tile(const double* src, double* dst, std::int64_t rows, std::int64_t cols);

}  // namespace oocs::dra
