#include "dra/transpose.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace oocs::dra {

void transpose_tile(const double* src, double* dst, std::int64_t rows, std::int64_t cols) {
  // Cache-blocked in-memory transpose.
  constexpr std::int64_t kBlock = 32;
  for (std::int64_t r0 = 0; r0 < rows; r0 += kBlock) {
    const std::int64_t r1 = std::min(r0 + kBlock, rows);
    for (std::int64_t c0 = 0; c0 < cols; c0 += kBlock) {
      const std::int64_t c1 = std::min(c0 + kBlock, cols);
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          dst[c * rows + r] = src[r * cols + c];
        }
      }
    }
  }
}

TransposeStats transpose_out_of_core(DiskArray& in, DiskArray& out,
                                     std::int64_t buffer_bytes) {
  if (in.extents().size() != 2 || out.extents().size() != 2) {
    throw SpecError("transpose_out_of_core requires 2-D arrays");
  }
  const std::int64_t rows = in.extents()[0];
  const std::int64_t cols = in.extents()[1];
  if (out.extents()[0] != cols || out.extents()[1] != rows) {
    throw SpecError("output extents must mirror the input's");
  }
  // Two B×B tiles (source + transposed) share the budget.
  const std::int64_t tile = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor(std::sqrt(
             static_cast<double>(buffer_bytes) / (2.0 * 8.0)))));
  if (buffer_bytes < 16) throw SpecError("buffer budget below two elements");

  TransposeStats stats;
  stats.tile = tile;
  const bool carries_data = in.stores_data() && out.stores_data();
  std::vector<double> src;
  std::vector<double> dst;
  if (carries_data) {
    src.resize(static_cast<std::size_t>(tile * tile));
    dst.resize(static_cast<std::size_t>(tile * tile));
  }

  for (std::int64_t r0 = 0; r0 < rows; r0 += tile) {
    const std::int64_t r1 = std::min(r0 + tile, rows);
    for (std::int64_t c0 = 0; c0 < cols; c0 += tile) {
      const std::int64_t c1 = std::min(c0 + tile, cols);
      const Section src_section{{{r0, r1}, {c0, c1}}};
      const Section dst_section{{{c0, c1}, {r0, r1}}};
      if (carries_data) {
        in.read(src_section, src);
        transpose_tile(src.data(), dst.data(), r1 - r0, c1 - c0);
        out.write(dst_section, dst);
      } else {
        in.read(src_section, {});
        out.write(dst_section, {});
      }
      ++stats.tiles_moved;
    }
  }
  stats.io = in.stats();
  stats.io.merge(out.stats());
  return stats;
}

}  // namespace oocs::dra
