// DiskFarm: the set of disk-resident arrays backing one program run.
//
// Arrays are created lazily from the program's declarations, with a
// uniform backend: POSIX files under a directory, or the modeled disk.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "dra/disk_array.hpp"
#include "dra/striped_array.hpp"
#include "ir/program.hpp"

namespace oocs::dra {

class DiskFarm {
 public:
  /// Interposes on array creation: receives the freshly created backend
  /// and returns the array the farm should hand out (e.g. a cache
  /// front-end wrapping it).  See cache::attach_cache.
  using ArrayWrapper = std::function<std::unique_ptr<DiskArray>(std::unique_ptr<DiskArray>)>;

  /// Real files under `directory` (created if needed).
  [[nodiscard]] static DiskFarm posix(const ir::Program& program, std::string directory);

  /// Modeled disk (no data).
  [[nodiscard]] static DiskFarm sim(const ir::Program& program, DiskModel model = {});

  /// Arrays chunk-striped over per-proc scratch directories (the
  /// multi-process GA storage layout).  `attach` opens existing stripe
  /// files instead of creating them — the worker-process side.
  [[nodiscard]] static DiskFarm striped(const ir::Program& program, StripeLayout layout,
                                        bool attach = false);

  /// The disk array for `name` (created on first use from the program
  /// declaration).  Throws SpecError for unknown arrays.
  [[nodiscard]] DiskArray& array(const std::string& name);

  /// Installs (or clears, with nullptr) the creation hook.  Must be set
  /// before any array is created — already-materialized arrays would
  /// bypass the wrapper.
  void set_array_wrapper(ArrayWrapper wrapper);

  [[nodiscard]] bool is_simulated() const noexcept { return simulated_; }

  /// Aggregated statistics over every array touched so far.
  [[nodiscard]] IoStats total_stats() const;
  void reset_stats();

  /// Detaches every array created so far: backing files survive this
  /// farm's destruction.  Used by the multi-process launcher, which
  /// stages inputs and then hands the files to freshly forked workers.
  void detach_all() noexcept;

 private:
  enum class Kind { kPosix, kSim, kStriped };

  explicit DiskFarm(const ir::Program& program) : program_(&program) {}

  const ir::Program* program_;
  Kind kind_ = Kind::kPosix;
  bool simulated_ = false;
  std::string directory_;
  DiskModel model_;
  StripeLayout stripe_layout_;
  bool stripe_attach_ = false;
  ArrayWrapper wrapper_;
  std::map<std::string, std::unique_ptr<DiskArray>> arrays_;
};

}  // namespace oocs::dra
