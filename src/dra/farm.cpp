#include "dra/farm.hpp"

#include "common/error.hpp"

namespace oocs::dra {

DiskFarm DiskFarm::posix(const ir::Program& program, std::string directory) {
  DiskFarm farm(program);
  farm.kind_ = Kind::kPosix;
  farm.simulated_ = false;
  farm.directory_ = std::move(directory);
  return farm;
}

DiskFarm DiskFarm::sim(const ir::Program& program, DiskModel model) {
  DiskFarm farm(program);
  farm.kind_ = Kind::kSim;
  farm.simulated_ = true;
  farm.model_ = model;
  return farm;
}

DiskFarm DiskFarm::striped(const ir::Program& program, StripeLayout layout, bool attach) {
  DiskFarm farm(program);
  farm.kind_ = Kind::kStriped;
  farm.simulated_ = false;
  farm.stripe_layout_ = std::move(layout);
  farm.stripe_attach_ = attach;
  return farm;
}

DiskArray& DiskFarm::array(const std::string& name) {
  const auto it = arrays_.find(name);
  if (it != arrays_.end()) return *it->second;

  const ir::ArrayDecl& decl = program_->array(name);
  std::vector<std::int64_t> extents;
  extents.reserve(decl.indices.size());
  for (const std::string& index : decl.indices) extents.push_back(program_->range(index));

  std::unique_ptr<DiskArray> created;
  switch (kind_) {
    case Kind::kSim:
      created = std::make_unique<SimDiskArray>(name, std::move(extents), model_);
      break;
    case Kind::kStriped:
      created = std::make_unique<StripedDiskArray>(
          name, std::move(extents), stripe_layout_,
          stripe_attach_ ? StripedDiskArray::Mode::kAttach : StripedDiskArray::Mode::kCreate);
      break;
    case Kind::kPosix:
      created = std::make_unique<PosixDiskArray>(name, std::move(extents), directory_);
      break;
  }
  if (wrapper_) {
    created = wrapper_(std::move(created));
    OOCS_REQUIRE(created != nullptr, "array wrapper returned null for '", name, "'");
  }
  DiskArray& ref = *created;
  arrays_.emplace(name, std::move(created));
  return ref;
}

void DiskFarm::set_array_wrapper(ArrayWrapper wrapper) {
  OOCS_REQUIRE(arrays_.empty(),
               "set_array_wrapper must be called before any array is created");
  wrapper_ = std::move(wrapper);
}

IoStats DiskFarm::total_stats() const {
  IoStats total;
  for (const auto& [name, array] : arrays_) total.merge(array->stats());
  return total;
}

void DiskFarm::reset_stats() {
  for (auto& [name, array] : arrays_) array->reset_stats();
}

void DiskFarm::detach_all() noexcept {
  for (auto& [name, array] : arrays_) array->detach();
}

}  // namespace oocs::dra
