#include "dra/farm.hpp"

#include "common/error.hpp"

namespace oocs::dra {

DiskFarm DiskFarm::posix(const ir::Program& program, std::string directory) {
  DiskFarm farm(program);
  farm.simulated_ = false;
  farm.directory_ = std::move(directory);
  return farm;
}

DiskFarm DiskFarm::sim(const ir::Program& program, DiskModel model) {
  DiskFarm farm(program);
  farm.simulated_ = true;
  farm.model_ = model;
  return farm;
}

DiskArray& DiskFarm::array(const std::string& name) {
  const auto it = arrays_.find(name);
  if (it != arrays_.end()) return *it->second;

  const ir::ArrayDecl& decl = program_->array(name);
  std::vector<std::int64_t> extents;
  extents.reserve(decl.indices.size());
  for (const std::string& index : decl.indices) extents.push_back(program_->range(index));

  std::unique_ptr<DiskArray> created;
  if (simulated_) {
    created = std::make_unique<SimDiskArray>(name, std::move(extents), model_);
  } else {
    created = std::make_unique<PosixDiskArray>(name, std::move(extents), directory_);
  }
  if (wrapper_) {
    created = wrapper_(std::move(created));
    OOCS_REQUIRE(created != nullptr, "array wrapper returned null for '", name, "'");
  }
  DiskArray& ref = *created;
  arrays_.emplace(name, std::move(created));
  return ref;
}

void DiskFarm::set_array_wrapper(ArrayWrapper wrapper) {
  OOCS_REQUIRE(arrays_.empty(),
               "set_array_wrapper must be called before any array is created");
  wrapper_ = std::move(wrapper);
}

IoStats DiskFarm::total_stats() const {
  IoStats total;
  for (const auto& [name, array] : arrays_) total.merge(array->stats());
  return total;
}

void DiskFarm::reset_stats() {
  for (auto& [name, array] : arrays_) array->reset_stats();
}

}  // namespace oocs::dra
