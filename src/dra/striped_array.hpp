// StripedDiskArray: one logical DRA array RAID-0-striped over several
// stripe files in process-private scratch directories.
//
// This is the storage layout of the multi-process GA backend
// (ga::run_procs): every virtual proc k owns `<root>/proc<k>/`, and a
// logical array A is split chunk-round-robin over the stripe files
// `<root>/proc<s>/A.s<s>.dra`.  Reads and writes from different
// processes therefore hit disjoint file descriptors (and mostly
// disjoint files), which is what makes the parallel I/O in Table 4
// measured rather than simulated.
//
// Chunk mapping (classic RAID-0 over the row-major linear order):
//
//   chunk c       = linear_offset / chunk_elements
//   stripe s      = c % stripes
//   offset within = (c / stripes) * chunk_elements
//                   + linear_offset % chunk_elements
//
// Cross-process accumulate atomicity uses Linux open-file-description
// (OFD) record locks on a per-array `<root>/A.lock` file: the RMW
// locks the section's linear byte span, so overlapping sections from
// any process (or any two array *instances* in one process) exclude
// each other while disjoint spans proceed in parallel.  A per-instance
// mutex still serializes same-instance callers, because the kernel
// grants re-requests from the same OFD.
#pragma once

#include <string>
#include <vector>

#include "dra/disk_array.hpp"

namespace oocs::dra {

/// Where the stripes of an array live and how fine they are.
struct StripeLayout {
  std::string root;                       ///< farm root directory
  int stripes = 1;                        ///< stripe count (== virtual procs)
  std::int64_t chunk_elements = 32768;    ///< 256 KB chunks of doubles

  /// Scratch directory owned by proc/stripe `s`: `<root>/proc<s>`.
  [[nodiscard]] std::string stripe_dir(int s) const;
};

class StripedDiskArray final : public DiskArray {
 public:
  enum class Mode {
    kCreate,  ///< create-or-truncate the stripe files (launcher side)
    kAttach,  ///< open existing stripe files (worker side)
  };

  StripedDiskArray(std::string name, std::vector<std::int64_t> extents, StripeLayout layout,
                   Mode mode);
  ~StripedDiskArray() override;

  [[nodiscard]] bool stores_data() const noexcept override { return true; }
  [[nodiscard]] const StripeLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const std::vector<std::string>& stripe_paths() const noexcept { return paths_; }

  /// Keep the stripe and lock files on destruction.  The launcher
  /// detaches after staging inputs so the files survive for the worker
  /// processes; the worker side (kAttach) never owns them.
  void detach() noexcept override { owns_files_ = false; }

  /// GA-style atomic read-add-write, atomic *across processes* via an
  /// OFD record lock on the section's linear byte span.
  void accumulate(const Section& section, std::span<const double> data,
                  ThreadPool* pool = nullptr) override;

 protected:
  void do_read(const Section& section, std::span<double> out) override;
  void do_write(const Section& section, std::span<const double> data) override;

 private:
  /// pread/pwrite of a contiguous linear range, split over chunks.
  void transfer_linear(std::int64_t linear_offset, std::int64_t run_elements, double* read_buf,
                       const double* write_buf);

  StripeLayout layout_;
  std::vector<int> fds_;            // one per stripe
  std::vector<std::string> paths_;  // one per stripe
  std::string lock_path_;
  int lock_fd_ = -1;
  bool owns_files_ = true;
};

}  // namespace oocs::dra
