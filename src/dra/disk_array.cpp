#include "dra/disk_array.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace oocs::dra {

void IoStats::merge(const IoStats& other) noexcept {
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  read_calls += other.read_calls;
  write_calls += other.write_calls;
  seconds += other.seconds;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_hit_bytes += other.cache_hit_bytes;
  cache_evictions += other.cache_evictions;
  cache_writebacks += other.cache_writebacks;
  cache_writeback_bytes += other.cache_writeback_bytes;
}

IoStats IoStats::since(const IoStats& earlier) const noexcept {
  IoStats delta;
  delta.bytes_read = bytes_read - earlier.bytes_read;
  delta.bytes_written = bytes_written - earlier.bytes_written;
  delta.read_calls = read_calls - earlier.read_calls;
  delta.write_calls = write_calls - earlier.write_calls;
  delta.seconds = seconds - earlier.seconds;
  delta.cache_hits = cache_hits - earlier.cache_hits;
  delta.cache_misses = cache_misses - earlier.cache_misses;
  delta.cache_hit_bytes = cache_hit_bytes - earlier.cache_hit_bytes;
  delta.cache_evictions = cache_evictions - earlier.cache_evictions;
  delta.cache_writebacks = cache_writebacks - earlier.cache_writebacks;
  delta.cache_writeback_bytes = cache_writeback_bytes - earlier.cache_writeback_bytes;
  return delta;
}

namespace {
/// Monotonic wall clock shared by every array so busy intervals from
/// different threads live on one axis.
double epoch_seconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch).count();
}
}  // namespace

std::int64_t Section::elements() const noexcept {
  std::int64_t count = 1;
  for (const auto& [lo, hi] : dims) count *= hi - lo;
  return count;
}

Section Section::whole(const std::vector<std::int64_t>& extents) {
  Section section;
  section.dims.reserve(extents.size());
  for (const std::int64_t extent : extents) section.dims.emplace_back(0, extent);
  return section;
}

DiskArray::DiskArray(std::string name, std::vector<std::int64_t> extents)
    : name_(std::move(name)), extents_(std::move(extents)) {
  for (const std::int64_t extent : extents_) {
    OOCS_REQUIRE(extent > 0, "array '", name_, "': extent must be positive");
    elements_ *= extent;
  }
}

void DiskArray::check_section(const Section& section, std::size_t span_size,
                              bool needs_data) const {
  if (section.rank() != extents_.size()) {
    throw IoError("section rank " + std::to_string(section.rank()) + " != array rank " +
                  std::to_string(extents_.size()) + " for '" + name_ + "'");
  }
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    const auto [lo, hi] = section.dims[d];
    if (lo < 0 || hi > extents_[d] || lo >= hi) {
      throw IoError("bad section [" + std::to_string(lo) + ", " + std::to_string(hi) +
                    ") for dim " + std::to_string(d) + " of '" + name_ + "'");
    }
  }
  if (needs_data && span_size < static_cast<std::size_t>(section.elements())) {
    throw IoError("buffer too small for section of '" + name_ + "': " +
                  std::to_string(span_size) + " < " + std::to_string(section.elements()));
  }
}

double DiskArray::cost_seconds(std::int64_t, bool) const { return 0; }

void DiskArray::add_busy_interval(double t0, double t1) noexcept {
  // Intervals are recorded in completion order under mutex_, so the
  // union reduces to "time past the furthest busy end seen so far":
  // fully contained intervals add nothing, overlapping ones add their
  // uncovered tail.
  stats_.seconds += std::max(0.0, t1 - std::max(t0, busy_until_));
  busy_until_ = std::max(busy_until_, t1);
}

void DiskArray::read(const Section& section, std::span<double> out) {
  check_section(section, out.size(), stores_data());
  const bool wall_timed = stores_data();
  const double t0 = wall_timed ? epoch_seconds() : 0;
  do_read(section, out);
  const double t1 = wall_timed ? epoch_seconds() : 0;
  const std::int64_t bytes = section.elements() * 8;
  const std::scoped_lock lock(mutex_);
  stats_.bytes_read += bytes;
  stats_.read_calls += 1;
  if (wall_timed) {
    add_busy_interval(t0, t1);
  } else {
    stats_.seconds += cost_seconds(bytes, /*is_write=*/false);
  }
}

void DiskArray::write(const Section& section, std::span<const double> data) {
  check_section(section, data.size(), stores_data());
  const bool wall_timed = stores_data();
  const double t0 = wall_timed ? epoch_seconds() : 0;
  do_write(section, data);
  const double t1 = wall_timed ? epoch_seconds() : 0;
  const std::int64_t bytes = section.elements() * 8;
  const std::scoped_lock lock(mutex_);
  stats_.bytes_written += bytes;
  stats_.write_calls += 1;
  if (wall_timed) {
    add_busy_interval(t0, t1);
  } else {
    stats_.seconds += cost_seconds(bytes, /*is_write=*/true);
  }
}

void DiskArray::accumulate(const Section& section, std::span<const double> data,
                           ThreadPool* pool) {
  check_section(section, data.size(), stores_data());
  if (!stores_data()) {
    // Modeled backend: account one read + one write.
    read(section, {});
    write(section, {});
    return;
  }
  // Serialize the read-modify-write so concurrent accumulations to
  // overlapping sections are GA-style atomic.
  static std::mutex accumulate_mutex;
  const std::scoped_lock lock(accumulate_mutex);
  std::vector<double> current(static_cast<std::size_t>(section.elements()));
  read(section, current);
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->parallel_for(0, static_cast<std::int64_t>(current.size()), 4096,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) {
                           current[static_cast<std::size_t>(i)] +=
                               data[static_cast<std::size_t>(i)];
                         }
                       });
  } else {
    for (std::size_t i = 0; i < current.size(); ++i) current[i] += data[i];
  }
  write(section, current);
}

IoStats DiskArray::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

void DiskArray::reset_stats() {
  const std::scoped_lock lock(mutex_);
  stats_ = IoStats{};
}

// ---------------------------------------------------------------------
// PosixDiskArray

PosixDiskArray::PosixDiskArray(std::string name, std::vector<std::int64_t> extents,
                               std::string directory)
    : DiskArray(std::move(name), std::move(extents)) {
  std::filesystem::create_directories(directory);
  path_ = directory + "/" + name_ + ".dra";
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw IoError("cannot create disk array file '" + path_ + "': " + std::strerror(errno));
  }
  if (::ftruncate(fd_, static_cast<off_t>(bytes())) != 0) {
    throw IoError("cannot size disk array file '" + path_ + "': " + std::strerror(errno));
  }
}

PosixDiskArray::~PosixDiskArray() {
  if (fd_ >= 0) ::close(fd_);
  if (owns_file_) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
}

template <typename Fn>
void PosixDiskArray::for_each_run(const Section& section, Fn&& fn) const {
  const std::size_t rank = extents_.size();
  if (rank == 0) {
    fn(std::int64_t{0}, std::int64_t{1}, std::int64_t{0});
    return;
  }
  // Row-major strides.
  std::vector<std::int64_t> stride(rank, 1);
  for (std::size_t d = rank - 1; d > 0; --d) stride[d - 1] = stride[d] * extents_[d];

  const std::int64_t run = section.dims[rank - 1].second - section.dims[rank - 1].first;
  std::vector<std::int64_t> idx(rank);
  for (std::size_t d = 0; d < rank; ++d) idx[d] = section.dims[d].first;

  std::int64_t buffer_offset = 0;
  while (true) {
    std::int64_t file_offset = 0;
    for (std::size_t d = 0; d < rank; ++d) file_offset += idx[d] * stride[d];
    fn(file_offset, run, buffer_offset);
    buffer_offset += run;
    // Advance the multi-index over all dims but the last.
    if (rank == 1) break;
    std::size_t d = rank - 1;
    bool done = false;
    while (true) {
      if (d == 0) {
        done = true;
        break;
      }
      --d;
      if (++idx[d] < section.dims[d].second) break;
      idx[d] = section.dims[d].first;
      if (d == 0) {
        done = true;
        break;
      }
    }
    if (done) break;
  }
}

void PosixDiskArray::do_read(const Section& section, std::span<double> out) {
  for_each_run(section, [&](std::int64_t file_off, std::int64_t run, std::int64_t buf_off) {
    const ssize_t want = static_cast<ssize_t>(run * 8);
    const ssize_t got = ::pread(fd_, out.data() + buf_off, static_cast<std::size_t>(want),
                                static_cast<off_t>(file_off * 8));
    if (got != want) {
      throw IoError("short read on '" + path_ + "': " + std::to_string(got) + " of " +
                    std::to_string(want) + " bytes");
    }
  });
}

void PosixDiskArray::do_write(const Section& section, std::span<const double> data) {
  for_each_run(section, [&](std::int64_t file_off, std::int64_t run, std::int64_t buf_off) {
    const ssize_t want = static_cast<ssize_t>(run * 8);
    const ssize_t put = ::pwrite(fd_, data.data() + buf_off, static_cast<std::size_t>(want),
                                 static_cast<off_t>(file_off * 8));
    if (put != want) {
      throw IoError("short write on '" + path_ + "': " + std::to_string(put) + " of " +
                    std::to_string(want) + " bytes");
    }
  });
}

// ---------------------------------------------------------------------
// SimDiskArray

SimDiskArray::SimDiskArray(std::string name, std::vector<std::int64_t> extents, DiskModel model)
    : DiskArray(std::move(name), std::move(extents)), model_(model) {}

void SimDiskArray::do_read(const Section&, std::span<double> out) {
  // Deterministic placeholder data lets correctness-insensitive smoke
  // runs execute kernels on simulated inputs.
  for (double& v : out) v = 0;
}

void SimDiskArray::do_write(const Section&, std::span<const double>) {}

double SimDiskArray::cost_seconds(std::int64_t bytes, bool is_write) const {
  const double bandwidth =
      is_write ? model_.write_bandwidth_bytes_per_s : model_.read_bandwidth_bytes_per_s;
  return model_.seek_seconds + static_cast<double>(bytes) / bandwidth;
}

}  // namespace oocs::dra
