#include "dra/disk_array.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oocs::dra {

namespace {

/// Monotonic wall clock shared with the trace/log layers, so busy
/// intervals, spans, and log lines live on one axis.
double epoch_seconds() { return obs::monotonic_seconds(); }

/// Disk-op latency distributions (wall-timed backends only; modeled
/// costs would skew the measured percentiles).
obs::Histogram& read_latency() {
  static obs::Histogram& h = obs::metrics().histogram("dra.read_seconds");
  return h;
}
obs::Histogram& write_latency() {
  static obs::Histogram& h = obs::metrics().histogram("dra.write_seconds");
  return h;
}

}  // namespace

// Both directions generated from one field list, so a field can no
// longer be merged but silently dropped from since() (or vice versa).
// The assert fires when a field is added to the struct without
// extending OOCS_IO_STAT_FIELDS.
static_assert(sizeof(IoStats) == 11 * 8,
              "IoStats changed: update OOCS_IO_STAT_FIELDS in disk_array.hpp");

void IoStats::merge(const IoStats& other) noexcept {
#define OOCS_IO_STAT_MERGE(field) field += other.field;
  OOCS_IO_STAT_FIELDS(OOCS_IO_STAT_MERGE)
#undef OOCS_IO_STAT_MERGE
}

IoStats IoStats::since(const IoStats& earlier) const noexcept {
  IoStats delta;
#define OOCS_IO_STAT_DIFF(field) delta.field = field - earlier.field;
  OOCS_IO_STAT_FIELDS(OOCS_IO_STAT_DIFF)
#undef OOCS_IO_STAT_DIFF
  return delta;
}

std::int64_t Section::elements() const noexcept {
  std::int64_t count = 1;
  for (const auto& [lo, hi] : dims) count *= hi - lo;
  return count;
}

Section Section::whole(const std::vector<std::int64_t>& extents) {
  Section section;
  section.dims.reserve(extents.size());
  for (const std::int64_t extent : extents) section.dims.emplace_back(0, extent);
  return section;
}

DiskArray::DiskArray(std::string name, std::vector<std::int64_t> extents)
    : name_(std::move(name)), extents_(std::move(extents)) {
  for (const std::int64_t extent : extents_) {
    OOCS_REQUIRE(extent > 0, "array '", name_, "': extent must be positive");
    elements_ *= extent;
  }
}

void DiskArray::check_section(const Section& section, std::size_t span_size,
                              bool needs_data) const {
  if (section.rank() != extents_.size()) {
    throw IoError("section rank " + std::to_string(section.rank()) + " != array rank " +
                  std::to_string(extents_.size()) + " for '" + name_ + "'");
  }
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    const auto [lo, hi] = section.dims[d];
    if (lo < 0 || hi > extents_[d] || lo >= hi) {
      throw IoError("bad section [" + std::to_string(lo) + ", " + std::to_string(hi) +
                    ") for dim " + std::to_string(d) + " of '" + name_ + "'");
    }
  }
  if (needs_data && span_size < static_cast<std::size_t>(section.elements())) {
    throw IoError("buffer too small for section of '" + name_ + "': " +
                  std::to_string(span_size) + " < " + std::to_string(section.elements()));
  }
}

double DiskArray::cost_seconds(std::int64_t, bool) const { return 0; }

void DiskArray::add_busy_interval(double t0, double t1) noexcept {
  // Intervals are recorded in completion order under mutex_, so the
  // union reduces to "time past the furthest busy end seen so far":
  // fully contained intervals add nothing, overlapping ones add their
  // uncovered tail.
  stats_.seconds += std::max(0.0, t1 - std::max(t0, busy_until_));
  busy_until_ = std::max(busy_until_, t1);
}

void DiskArray::read(const Section& section, std::span<double> out) {
  check_section(section, out.size(), stores_data());
  const bool wall_timed = stores_data();
  const std::int64_t span_t0 = obs::trace_enabled() ? obs::monotonic_ns() : -1;
  const double t0 = wall_timed ? epoch_seconds() : 0;
  do_read(section, out);
  const double t1 = wall_timed ? epoch_seconds() : 0;
  if (span_t0 >= 0) obs::record_span("io", "read:" + name_, span_t0, obs::monotonic_ns());
  if (wall_timed) read_latency().record_seconds(t1 - t0);
  const std::int64_t bytes = section.elements() * 8;
  const std::scoped_lock lock(mutex_);
  stats_.bytes_read += bytes;
  stats_.read_calls += 1;
  if (wall_timed) {
    add_busy_interval(t0, t1);
  } else {
    stats_.seconds += cost_seconds(bytes, /*is_write=*/false);
  }
}

void DiskArray::write(const Section& section, std::span<const double> data) {
  check_section(section, data.size(), stores_data());
  const bool wall_timed = stores_data();
  const std::int64_t span_t0 = obs::trace_enabled() ? obs::monotonic_ns() : -1;
  const double t0 = wall_timed ? epoch_seconds() : 0;
  do_write(section, data);
  const double t1 = wall_timed ? epoch_seconds() : 0;
  if (span_t0 >= 0) obs::record_span("io", "write:" + name_, span_t0, obs::monotonic_ns());
  if (wall_timed) write_latency().record_seconds(t1 - t0);
  const std::int64_t bytes = section.elements() * 8;
  const std::scoped_lock lock(mutex_);
  stats_.bytes_written += bytes;
  stats_.write_calls += 1;
  if (wall_timed) {
    add_busy_interval(t0, t1);
  } else {
    stats_.seconds += cost_seconds(bytes, /*is_write=*/true);
  }
}

void DiskArray::accumulate(const Section& section, std::span<const double> data,
                           ThreadPool* pool) {
  check_section(section, data.size(), stores_data());
  if (!stores_data()) {
    // Modeled backend: account one read + one write.
    read(section, {});
    write(section, {});
    return;
  }
  // Serialize the read-modify-write so concurrent accumulations to
  // overlapping sections of this array are GA-style atomic.  Per-array
  // (not global): RMW traffic to distinct arrays proceeds in parallel.
  const std::scoped_lock lock(accumulate_mutex_);
  OOCS_SPAN("io", "accumulate");
  std::vector<double> current(static_cast<std::size_t>(section.elements()));
  read(section, current);
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->parallel_for(0, static_cast<std::int64_t>(current.size()), 4096,
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) {
                           current[static_cast<std::size_t>(i)] +=
                               data[static_cast<std::size_t>(i)];
                         }
                       });
  } else {
    for (std::size_t i = 0; i < current.size(); ++i) current[i] += data[i];
  }
  write(section, current);
}

IoStats DiskArray::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

void DiskArray::reset_stats() {
  const std::scoped_lock lock(mutex_);
  stats_ = IoStats{};
}

// ---------------------------------------------------------------------
// PosixDiskArray

PosixDiskArray::PosixDiskArray(std::string name, std::vector<std::int64_t> extents,
                               std::string directory)
    : DiskArray(std::move(name), std::move(extents)) {
  std::filesystem::create_directories(directory);
  // The pid tag keeps concurrent processes sharing one farm root from
  // opening (and O_TRUNCing) each other's scratch files.
  path_ = directory + "/" + name_ + "." + std::to_string(::getpid()) + ".dra";
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw IoError("cannot create disk array file '" + path_ + "': " + std::strerror(errno));
  }
  if (::ftruncate(fd_, static_cast<off_t>(bytes())) != 0) {
    throw IoError("cannot size disk array file '" + path_ + "': " + std::strerror(errno));
  }
}

PosixDiskArray::~PosixDiskArray() {
  if (fd_ >= 0) ::close(fd_);
  if (owns_file_) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
}

void PosixDiskArray::do_read(const Section& section, std::span<double> out) {
  for_each_contiguous_run(section, [&](std::int64_t file_off, std::int64_t run,
                                       std::int64_t buf_off) {
    const ssize_t want = static_cast<ssize_t>(run * 8);
    const ssize_t got = ::pread(fd_, out.data() + buf_off, static_cast<std::size_t>(want),
                                static_cast<off_t>(file_off * 8));
    if (got != want) {
      throw IoError("short read on '" + path_ + "': " + std::to_string(got) + " of " +
                    std::to_string(want) + " bytes");
    }
  });
}

void PosixDiskArray::do_write(const Section& section, std::span<const double> data) {
  for_each_contiguous_run(section, [&](std::int64_t file_off, std::int64_t run,
                                       std::int64_t buf_off) {
    const ssize_t want = static_cast<ssize_t>(run * 8);
    const ssize_t put = ::pwrite(fd_, data.data() + buf_off, static_cast<std::size_t>(want),
                                 static_cast<off_t>(file_off * 8));
    if (put != want) {
      throw IoError("short write on '" + path_ + "': " + std::to_string(put) + " of " +
                    std::to_string(want) + " bytes");
    }
  });
}

// ---------------------------------------------------------------------
// SimDiskArray

SimDiskArray::SimDiskArray(std::string name, std::vector<std::int64_t> extents, DiskModel model)
    : DiskArray(std::move(name), std::move(extents)), model_(model) {}

void SimDiskArray::do_read(const Section&, std::span<double> out) {
  // Deterministic placeholder data lets correctness-insensitive smoke
  // runs execute kernels on simulated inputs.
  for (double& v : out) v = 0;
}

void SimDiskArray::do_write(const Section&, std::span<const double>) {}

double SimDiskArray::cost_seconds(std::int64_t bytes, bool is_write) const {
  const double bandwidth =
      is_write ? model_.write_bandwidth_bytes_per_s : model_.read_bandwidth_bytes_per_s;
  return model_.seek_seconds + static_cast<double>(bytes) / bandwidth;
}

}  // namespace oocs::dra
