#include "dra/striped_array.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

// OFD record locks are Linux-specific; glibc hides them without
// _GNU_SOURCE.  The values are kernel ABI, so defining the fallbacks
// is safe on any Linux libc.
#ifndef F_OFD_SETLK
#define F_OFD_SETLK 37
#endif
#ifndef F_OFD_SETLKW
#define F_OFD_SETLKW 38
#endif

namespace oocs::dra {

namespace {

/// RAII byte-range lock on an OFD.  Waits (F_OFD_SETLKW) on acquire.
class FileRangeLock {
 public:
  FileRangeLock(int fd, off_t start, off_t len) : fd_(fd), start_(start), len_(len) {
    struct flock lk {};
    lk.l_type = F_WRLCK;
    lk.l_whence = SEEK_SET;
    lk.l_start = start_;
    lk.l_len = len_;
    int rc;
    do {
      rc = ::fcntl(fd_, F_OFD_SETLKW, &lk);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      throw IoError(std::string("cannot lock accumulate range: ") + std::strerror(errno));
    }
  }

  ~FileRangeLock() {
    struct flock lk {};
    lk.l_type = F_UNLCK;
    lk.l_whence = SEEK_SET;
    lk.l_start = start_;
    lk.l_len = len_;
    ::fcntl(fd_, F_OFD_SETLK, &lk);
  }

  FileRangeLock(const FileRangeLock&) = delete;
  FileRangeLock& operator=(const FileRangeLock&) = delete;

 private:
  int fd_;
  off_t start_;
  off_t len_;
};

/// [first, last+1) linear-element span covered by a section (row-major).
/// Conservative for locking: overlapping sections always have
/// overlapping spans.
std::pair<std::int64_t, std::int64_t> linear_span(const Section& section,
                                                  const std::vector<std::int64_t>& extents) {
  const std::size_t rank = extents.size();
  std::vector<std::int64_t> stride(rank, 1);
  for (std::size_t d = rank; d > 1; --d) stride[d - 2] = stride[d - 1] * extents[d - 1];
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (std::size_t d = 0; d < rank; ++d) {
    lo += section.dims[d].first * stride[d];
    hi += (section.dims[d].second - 1) * stride[d];
  }
  return {lo, hi + 1};
}

}  // namespace

std::string StripeLayout::stripe_dir(int s) const {
  return root + "/proc" + std::to_string(s);
}

StripedDiskArray::StripedDiskArray(std::string name, std::vector<std::int64_t> extents,
                                   StripeLayout layout, Mode mode)
    : DiskArray(std::move(name), std::move(extents)), layout_(std::move(layout)) {
  OOCS_REQUIRE(layout_.stripes >= 1, "striped array '", name_, "': need >= 1 stripe");
  OOCS_REQUIRE(layout_.chunk_elements >= 1, "striped array '", name_,
               "': need positive chunk size");
  owns_files_ = mode == Mode::kCreate;

  const std::int64_t chunks =
      (elements_ + layout_.chunk_elements - 1) / layout_.chunk_elements;
  fds_.resize(static_cast<std::size_t>(layout_.stripes), -1);
  paths_.resize(static_cast<std::size_t>(layout_.stripes));
  for (int s = 0; s < layout_.stripes; ++s) {
    const std::string dir = layout_.stripe_dir(s);
    if (mode == Mode::kCreate) std::filesystem::create_directories(dir);
    paths_[static_cast<std::size_t>(s)] = dir + "/" + name_ + ".s" + std::to_string(s) + ".dra";
    const int flags = mode == Mode::kCreate ? O_RDWR | O_CREAT | O_TRUNC : O_RDWR;
    const int fd = ::open(paths_[static_cast<std::size_t>(s)].c_str(), flags, 0644);
    if (fd < 0) {
      throw IoError("cannot open stripe file '" + paths_[static_cast<std::size_t>(s)] +
                    "': " + std::strerror(errno));
    }
    fds_[static_cast<std::size_t>(s)] = fd;
    if (mode == Mode::kCreate) {
      // Chunks land round-robin, so stripe s holds ceil-ish share.
      const std::int64_t my_chunks = chunks / layout_.stripes + (s < chunks % layout_.stripes);
      if (::ftruncate(fd, static_cast<off_t>(my_chunks * layout_.chunk_elements * 8)) != 0) {
        throw IoError("cannot size stripe file '" + paths_[static_cast<std::size_t>(s)] +
                      "': " + std::strerror(errno));
      }
    }
  }

  lock_path_ = layout_.root + "/" + name_ + ".lock";
  lock_fd_ = ::open(lock_path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (lock_fd_ < 0) {
    throw IoError("cannot open lock file '" + lock_path_ + "': " + std::strerror(errno));
  }
}

StripedDiskArray::~StripedDiskArray() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
  if (lock_fd_ >= 0) ::close(lock_fd_);
  if (owns_files_) {
    std::error_code ec;
    for (const std::string& path : paths_) std::filesystem::remove(path, ec);
    std::filesystem::remove(lock_path_, ec);
  }
}

void StripedDiskArray::transfer_linear(std::int64_t linear_offset, std::int64_t run_elements,
                                       double* read_buf, const double* write_buf) {
  const std::int64_t chunk = layout_.chunk_elements;
  std::int64_t off = linear_offset;
  std::int64_t left = run_elements;
  std::int64_t buf = 0;
  while (left > 0) {
    const std::int64_t c = off / chunk;
    const std::int64_t within = off % chunk;
    const std::int64_t take = std::min(chunk - within, left);
    const int s = static_cast<int>(c % layout_.stripes);
    const off_t stripe_off = static_cast<off_t>(((c / layout_.stripes) * chunk + within) * 8);
    const ssize_t want = static_cast<ssize_t>(take * 8);
    ssize_t moved;
    if (read_buf != nullptr) {
      moved = ::pread(fds_[static_cast<std::size_t>(s)], read_buf + buf,
                      static_cast<std::size_t>(want), stripe_off);
    } else {
      moved = ::pwrite(fds_[static_cast<std::size_t>(s)], write_buf + buf,
                       static_cast<std::size_t>(want), stripe_off);
    }
    if (moved != want) {
      throw IoError(std::string("short ") + (read_buf != nullptr ? "read" : "write") +
                    " on stripe file '" + paths_[static_cast<std::size_t>(s)] +
                    "': " + std::to_string(moved) + " of " + std::to_string(want) + " bytes");
    }
    off += take;
    buf += take;
    left -= take;
  }
}

void StripedDiskArray::do_read(const Section& section, std::span<double> out) {
  for_each_contiguous_run(section, [&](std::int64_t lin_off, std::int64_t run,
                                       std::int64_t buf_off) {
    transfer_linear(lin_off, run, out.data() + buf_off, nullptr);
  });
}

void StripedDiskArray::do_write(const Section& section, std::span<const double> data) {
  for_each_contiguous_run(section, [&](std::int64_t lin_off, std::int64_t run,
                                       std::int64_t buf_off) {
    transfer_linear(lin_off, run, nullptr, data.data() + buf_off);
  });
}

void StripedDiskArray::accumulate(const Section& section, std::span<const double> data,
                                  ThreadPool* pool) {
  check_section(section, data.size(), /*needs_data=*/true);
  // Same-instance callers serialize on the per-array mutex (the kernel
  // would grant an overlapping re-request from the same OFD)...
  const std::scoped_lock local(accumulate_mutex_);
  // ...and cross-process / cross-instance callers exclude each other on
  // the section's linear byte span of the shared lock file, so RMWs to
  // disjoint output regions run genuinely in parallel.
  const auto [lo, hi] = linear_span(section, extents_);
  const FileRangeLock range(lock_fd_, static_cast<off_t>(lo * 8),
                            static_cast<off_t>((hi - lo) * 8));
  OOCS_SPAN("io", "accumulate");
  std::vector<double> current(static_cast<std::size_t>(section.elements()));
  read(section, current);
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->parallel_for(0, static_cast<std::int64_t>(current.size()), 4096,
                       [&](std::int64_t lo_i, std::int64_t hi_i) {
                         for (std::int64_t i = lo_i; i < hi_i; ++i) {
                           current[static_cast<std::size_t>(i)] +=
                               data[static_cast<std::size_t>(i)];
                         }
                       });
  } else {
    for (std::size_t i = 0; i < current.size(); ++i) current[i] += data[i];
  }
  write(section, current);
}

}  // namespace oocs::dra
