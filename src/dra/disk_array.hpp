// Disk Resident Arrays — the oocs substitute for the DRA library the
// paper's generated code runs on (Nieplocha & Foster).
//
// A DiskArray is a dense row-major multi-dimensional array of doubles
// living on secondary storage, accessed by rectangular *sections*.  Two
// backends implement the same interface:
//
//   PosixDiskArray — a real file; used for correctness runs at small
//                    scale (and by the examples).
//   SimDiskArray   — no data, just a calibrated timing/volume model
//                    (seek + transfer); used to "measure" disk time at
//                    paper scale, standing in for the Itanium-2 node's
//                    local disk (Table 1).
//
// Every array keeps I/O statistics: bytes/calls per direction plus the
// accumulated disk seconds (wall-clock for POSIX, modeled for Sim).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace oocs {
class ThreadPool;
}

namespace oocs::dra {

/// Disk timing model; defaults calibrated to the paper's 2003-era node:
/// ~9 ms average positioning time and ~50 MB/s sequential transfer, the
/// regime in which 2 MB reads / 1 MB writes make seek time negligible.
struct DiskModel {
  double seek_seconds = 0.009;
  double read_bandwidth_bytes_per_s = 50.0 * 1024 * 1024;
  double write_bandwidth_bytes_per_s = 45.0 * 1024 * 1024;
};

/// Every additive field of IoStats, in declaration order.  merge() and
/// since() are generated from this list so the two can never drift
/// apart again (a field added to the struct but not here is caught by
/// the size static_assert next to them in disk_array.cpp).
#define OOCS_IO_STAT_FIELDS(X) \
  X(bytes_read)                \
  X(bytes_written)             \
  X(read_calls)                \
  X(write_calls)               \
  X(seconds)                   \
  X(cache_hits)                \
  X(cache_misses)              \
  X(cache_hit_bytes)           \
  X(cache_evictions)           \
  X(cache_writebacks)          \
  X(cache_writeback_bytes)

struct IoStats {
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t read_calls = 0;
  std::int64_t write_calls = 0;
  /// Disk seconds: modeled (Sim) or measured wall clock (POSIX).  POSIX
  /// arrays accumulate the *union* of their per-call busy intervals, so
  /// concurrent callers (the aio worker pool, ga::run_threads) do not
  /// double-count overlapped time into one scalar.
  double seconds = 0;
  /// Tile-cache accounting (zero when no cache front-end is attached).
  /// Cache hits never reach the disk, so they are deliberately *not*
  /// folded into bytes_read/read_calls/seconds — that would silently
  /// skew the measured bandwidth.  bytes_read stays pure disk traffic.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_hit_bytes = 0;
  std::int64_t cache_evictions = 0;
  std::int64_t cache_writebacks = 0;
  std::int64_t cache_writeback_bytes = 0;

  void merge(const IoStats& other) noexcept;
  /// Field-wise difference (`*this` minus `earlier`) for interval
  /// accounting of one array/farm between two snapshots.
  [[nodiscard]] IoStats since(const IoStats& earlier) const noexcept;
};

/// A rectangular section: one [lo, hi) interval per dimension.
struct Section {
  std::vector<std::pair<std::int64_t, std::int64_t>> dims;

  [[nodiscard]] std::int64_t elements() const noexcept;
  [[nodiscard]] std::size_t rank() const noexcept { return dims.size(); }
  /// Full-array section for the given extents.
  [[nodiscard]] static Section whole(const std::vector<std::int64_t>& extents);
};

class DiskArray {
 public:
  DiskArray(std::string name, std::vector<std::int64_t> extents);
  virtual ~DiskArray() = default;

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::int64_t>& extents() const noexcept { return extents_; }
  [[nodiscard]] std::int64_t elements() const noexcept { return elements_; }
  [[nodiscard]] std::int64_t bytes() const noexcept { return elements_ * 8; }

  /// Reads `section` (dense row-major) into `out`.  `out` may be empty
  /// for backends that carry no data (SimDiskArray); data-carrying
  /// backends require `out.size() >= section.elements()`.  Virtual so a
  /// front-end (cache::CachedDiskArray) can interpose without the rest
  /// of the stack knowing.
  virtual void read(const Section& section, std::span<double> out);

  /// Writes `section` from `data` (same contract as read).
  virtual void write(const Section& section, std::span<const double> data);

  /// Atomic read-add-write of a section (the GA-style accumulate used
  /// by the parallel runtime).  Counts as one read plus one write.  The
  /// element-wise merge loop is chunked over `pool` when given.
  /// Atomicity scope is this process: concurrent accumulations through
  /// one array object serialize on a per-array mutex.  Cross-process
  /// atomicity needs a lock that lives outside the address space — see
  /// StripedDiskArray, which adds OFD record locks on top.
  virtual void accumulate(const Section& section, std::span<const double> data,
                          ThreadPool* pool = nullptr);

  [[nodiscard]] virtual IoStats stats() const;
  virtual void reset_stats();

  /// True if this backend stores real data (POSIX), false for Sim.
  [[nodiscard]] virtual bool stores_data() const noexcept = 0;

  /// Keep any backing files on destruction (no-op for data-free
  /// backends).  Used by multi-process staging, where the creating
  /// farm dies before the worker processes attach.
  virtual void detach() noexcept {}

 protected:
  virtual void do_read(const Section& section, std::span<double> out) = 0;
  virtual void do_write(const Section& section, std::span<const double> data) = 0;
  /// Modeled seconds for one call of `bytes` (data-free backends only;
  /// data-carrying backends are wall-clock timed with interval union).
  [[nodiscard]] virtual double cost_seconds(std::int64_t bytes, bool is_write) const;

  void check_section(const Section& section, std::size_t span_size, bool needs_data) const;

  /// Folds the wall-clock busy interval [t0, t1) (seconds since the
  /// process-wide epoch) into stats_.seconds as an interval union; must
  /// be called under mutex_ in completion order.
  void add_busy_interval(double t0, double t1) noexcept;

  /// Applies `fn(linear_offset_elements, run_elements, buffer_offset)`
  /// to every contiguous row-major run of the section, in linear order
  /// of the caller's buffer.  Shared by the file-backed backends
  /// (PosixDiskArray, StripedDiskArray).
  template <typename Fn>
  void for_each_contiguous_run(const Section& section, Fn&& fn) const {
    const std::size_t rank = extents_.size();
    if (rank == 0) {
      fn(std::int64_t{0}, std::int64_t{1}, std::int64_t{0});
      return;
    }
    // Row-major strides.
    std::vector<std::int64_t> stride(rank, 1);
    for (std::size_t d = rank - 1; d > 0; --d) stride[d - 1] = stride[d] * extents_[d];

    const std::int64_t run = section.dims[rank - 1].second - section.dims[rank - 1].first;
    std::vector<std::int64_t> idx(rank);
    for (std::size_t d = 0; d < rank; ++d) idx[d] = section.dims[d].first;

    std::int64_t buffer_offset = 0;
    while (true) {
      std::int64_t linear_offset = 0;
      for (std::size_t d = 0; d < rank; ++d) linear_offset += idx[d] * stride[d];
      fn(linear_offset, run, buffer_offset);
      buffer_offset += run;
      // Advance the multi-index over all dims but the last.
      if (rank == 1) break;
      std::size_t d = rank - 1;
      bool done = false;
      while (true) {
        if (d == 0) {
          done = true;
          break;
        }
        --d;
        if (++idx[d] < section.dims[d].second) break;
        idx[d] = section.dims[d].first;
        if (d == 0) {
          done = true;
          break;
        }
      }
      if (done) break;
    }
  }

  std::string name_;
  std::vector<std::int64_t> extents_;
  std::int64_t elements_ = 1;
  mutable std::mutex mutex_;
  /// Serializes the read-modify-write in accumulate() per array (not
  /// per process: two arrays may accumulate concurrently).
  mutable std::mutex accumulate_mutex_;
  IoStats stats_;
  /// End of the busy-interval union accumulated so far (epoch seconds).
  double busy_until_ = 0;
};

/// Real-file backend.  The file lives at `<dir>/<name>.<pid>.dra` —
/// the pid tag keeps two processes that open the same farm root from
/// clobbering each other's scratch files — is created sparse at full
/// size, and is removed on destruction unless detached.
class PosixDiskArray final : public DiskArray {
 public:
  PosixDiskArray(std::string name, std::vector<std::int64_t> extents, std::string directory);
  ~PosixDiskArray() override;

  [[nodiscard]] bool stores_data() const noexcept override { return true; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Keep the backing file on destruction.
  void detach() noexcept override { owns_file_ = false; }

 protected:
  void do_read(const Section& section, std::span<double> out) override;
  void do_write(const Section& section, std::span<const double> data) override;

 private:
  std::string path_;
  int fd_ = -1;
  bool owns_file_ = true;
};

/// Data-free modeled-disk backend.
class SimDiskArray final : public DiskArray {
 public:
  SimDiskArray(std::string name, std::vector<std::int64_t> extents, DiskModel model);

  [[nodiscard]] bool stores_data() const noexcept override { return false; }
  [[nodiscard]] const DiskModel& model() const noexcept { return model_; }

 protected:
  void do_read(const Section& section, std::span<double> out) override;
  void do_write(const Section& section, std::span<const double> data) override;
  [[nodiscard]] double cost_seconds(std::int64_t bytes, bool is_write) const override;

 private:
  DiskModel model_;
};

}  // namespace oocs::dra
