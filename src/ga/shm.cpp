#include "ga/shm.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "obs/clock.hpp"

namespace oocs::ga {

namespace {

/// futex(2) on a shared 32-bit word.  No FUTEX_PRIVATE_FLAG: waiters
/// and wakers live in different processes.
long futex(std::uint32_t* addr, int op, std::uint32_t value, const struct timespec* timeout) {
  return ::syscall(SYS_futex, addr, op, value, timeout, nullptr, 0);
}

/// Slice length for barrier waits: short enough that abort/deadline
/// checks are prompt, long enough to stay off the CPU while blocked.
constexpr double kWaitSliceSeconds = 0.05;

}  // namespace

ShmArena::ShmArena(std::size_t bytes) : size_(bytes) {
  // Name is only a rendezvous for shm_open and is unlinked before any
  // fork — children share the *mapping*, not the name, so a crashed
  // run can never leak a kernel object.
  static std::atomic<int> counter{0};
  const std::string name = "/oocs-ga-" + std::to_string(::getpid()) + "-" +
                           std::to_string(counter.fetch_add(1));
  const int fd = ::shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0) {
    throw Error("shm_open('" + name + "') failed: " + std::strerror(errno));
  }
  ::shm_unlink(name.c_str());
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("ftruncate(shm, " + std::to_string(bytes) + ") failed: " + std::strerror(err));
  }
  data_ = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (data_ == MAP_FAILED) {
    data_ = nullptr;
    throw Error("mmap(shm, " + std::to_string(bytes) + ") failed: " + std::strerror(errno));
  }
  std::memset(data_, 0, bytes);
}

ShmArena::~ShmArena() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

BarrierWait ShmBarrier::arrive_and_wait(const std::atomic<std::int32_t>& abort_flag,
                                        double timeout_seconds) noexcept {
  const std::int32_t my_sense = sense_.load(std::memory_order_acquire);
  if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arriver releases the phase: reset the count, flip the sense,
    // wake every waiter.
    count_.store(0, std::memory_order_release);
    sense_.store(1 - my_sense, std::memory_order_release);
    futex(reinterpret_cast<std::uint32_t*>(&sense_), FUTEX_WAKE,
          std::numeric_limits<std::uint32_t>::max(), nullptr);
    return BarrierWait::kOk;
  }
  const double deadline = obs::monotonic_seconds() + timeout_seconds;
  while (sense_.load(std::memory_order_acquire) == my_sense) {
    if (abort_flag.load(std::memory_order_acquire) != 0) return BarrierWait::kAborted;
    if (obs::monotonic_seconds() >= deadline) return BarrierWait::kTimeout;
    struct timespec slice;
    slice.tv_sec = 0;
    slice.tv_nsec = static_cast<long>(kWaitSliceSeconds * 1e9);
    // EAGAIN (sense already flipped) and EINTR both just re-check.
    futex(reinterpret_cast<std::uint32_t*>(&sense_), FUTEX_WAIT,
          static_cast<std::uint32_t>(my_sense), &slice);
  }
  return BarrierWait::kOk;
}

}  // namespace oocs::ga
