// Global-Arrays-style parallel execution substrate.
//
// The paper's parallel code runs on GA/DRA: a shared global-array model
// with collective disk I/O, each node contributing its local memory and
// local disk.  Our substitute executes an OocPlan over P processes:
//
//  * work distribution: the outermost tiling loop of every root nest is
//    distributed round-robin over processes;
//  * accumulation: read-modify-write outputs use GA-style atomic
//    accumulate so concurrent partial sums merge correctly;
//  * disk model: every process owns a local disk; collective I/O moves
//    each process's share concurrently, so modeled I/O time is the
//    maximum over the per-process disks.
//
// Two entry points: `run_threads` executes for real (POSIX farm, one
// std::thread per process — the correctness path), and `simulate`
// walks the plan once charging each process's modeled disk (the
// Table 4 path).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "dra/farm.hpp"
#include "rt/interpreter.hpp"

namespace oocs::cache {
class TileCache;
}

namespace oocs::ga {

struct ParallelStats {
  /// Which substrate produced this run: "threads", "procs", or
  /// "simulate" (ga/backend.hpp's Backend names).
  std::string backend = "threads";
  int num_procs = 1;
  /// Wall clock of the parallel section (launch to last join); zero
  /// for simulate.
  double wall_seconds = 0;
  /// Binary per-worker trace fragment files written by the procs
  /// backend while tracing; splice with
  /// obs::write_chrome_trace(os, fragments).  Empty otherwise.
  std::vector<std::string> trace_fragments;
  /// Binary per-worker metrics-registry fragments (procs backend,
  /// always written); merge with
  /// obs::write_merged_metrics_json(os, fragments).  Empty otherwise.
  std::vector<std::string> metrics_fragments;
  /// Modeled parallel I/O time: max over the per-process disks.
  double io_seconds = 0;
  /// Aggregate traffic over all processes.
  dra::IoStats total;
  /// Per-process modeled disk seconds.
  std::vector<double> per_proc_seconds;

  /// Modeled per-process compute seconds (plan flops / P / rate).
  double compute_seconds = 0;
  /// No-overlap model: Σ over stages of (per-proc io + compute).
  double serial_seconds = 0;
  /// Double-buffered overlap model: Σ over stages of
  /// max(per-proc io, per-proc compute) — what async execution targets.
  double overlap_seconds = 0;

  // Async-engine counters, summed over processes (run_threads with
  // async_io; zero otherwise).  queue_depth_hwm is the max over procs.
  double busy_seconds = 0;
  double stall_seconds = 0;
  std::int64_t queue_depth_hwm = 0;

  // Compute-thread telemetry (run_threads; zero/one otherwise).
  /// Per-process compute pool width actually used, after capping
  /// num_procs × threads at the hardware concurrency.
  int compute_threads = 1;
  /// Measured compute wall seconds, summed over processes.
  double measured_compute_seconds = 0;

  /// Per-stage breakdown (top-level plan roots), the drift-report unit.
  /// run_threads: io is the exact cross-process farm delta between root
  /// barriers; compute/wall seconds are the max over processes (the
  /// critical path).  simulate: io carries aggregate volumes with
  /// io.seconds already scaled to the per-process collective model, and
  /// compute_seconds is the per-process share.
  std::vector<rt::StageStats> stages;
};

/// Real parallel execution: P threads share `farm` (must store data).
/// Returns aggregated stats; outputs land in the farm's arrays.  With
/// `async_io` every process runs its own asynchronous I/O engine
/// (write-behind + read-ahead); engines are drained at root barriers so
/// cross-process visibility is unchanged.  Each process additionally
/// runs `compute_threads` in-core compute workers (0 = OOCS_THREADS
/// env, default 1), capped so num_procs × compute_threads never
/// oversubscribes the hardware concurrency.  When `tile_cache` is given
/// (already attached to `farm` via cache::attach_cache), every process
/// flushes it before arriving at a root barrier, so write-back data is
/// cross-process visible exactly where plain disk writes would be.
ParallelStats run_threads(const core::OocPlan& plan, dra::DiskFarm& farm, int num_procs,
                          bool async_io = false, int compute_threads = 0,
                          cache::TileCache* tile_cache = nullptr);

/// Modeled parallel run at paper scale: no data, each process charges
/// its local-disk share of every collective I/O call.  Also fills the
/// overlap cost model fields: per stage (top-level root), overlapped
/// time is max(disk, compute) instead of their sum.
/// `modeled_flops_per_second` = 0 uses the rt::ExecOptions default.
[[nodiscard]] ParallelStats simulate(const core::OocPlan& plan, int num_procs,
                                     dra::DiskModel model = {},
                                     double modeled_flops_per_second = 0);

/// Publishes the parallel run's stats into the process-wide
/// obs::metrics() registry under "ga.*" names (plus the shared io/cache
/// counters via rt::publish_metrics conventions).
void publish_metrics(const ParallelStats& stats);

}  // namespace oocs::ga
