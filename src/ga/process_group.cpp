#include "ga/process_group.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "obs/clock.hpp"

namespace oocs::ga {

void ProcessGroup::launch(int num_procs, const std::function<int(int rank)>& body) {
  OOCS_REQUIRE(num_procs >= 1, "process group needs >= 1 proc");
  OOCS_REQUIRE(children_.empty(), "process group already launched");
  children_.reserve(static_cast<std::size_t>(num_procs));
  for (int rank = 0; rank < num_procs; ++rank) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const std::string reason = std::strerror(errno);
      for (const Child& child : children_) ::kill(child.pid, SIGKILL);
      join(/*timeout_seconds=*/5.0);
      throw Error("ga: fork for proc " + std::to_string(rank) + " failed: " + reason);
    }
    if (pid == 0) {
      // Child: run the body and leave without touching inherited
      // parent state (no atexit, no static destructors, no unwinding).
      int code = 70;  // EX_SOFTWARE, for an exception the body let escape
      try {
        code = body(rank);
      } catch (...) {
      }
      std::_Exit(code);
    }
    children_.push_back(Child{rank, pid, 0, false, false});
  }
}

bool ProcessGroup::join(double timeout_seconds, const std::function<void()>& on_first_failure) {
  const double deadline = obs::monotonic_seconds() + timeout_seconds;
  bool failure_seen = false;
  bool all_clean = true;
  std::size_t live = 0;
  for (const Child& child : children_) live += child.reaped ? 0 : 1;

  const auto reap_ready = [&] {
    for (Child& child : children_) {
      if (child.reaped) continue;
      int status = 0;
      const pid_t got = ::waitpid(child.pid, &status, WNOHANG);
      if (got != child.pid) continue;
      child.wait_status = status;
      child.reaped = true;
      --live;
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0 && !child.killed;
      if (!clean) {
        all_clean = false;
        if (!failure_seen) {
          failure_seen = true;
          if (on_first_failure) on_first_failure();
        }
      }
    }
  };

  while (live > 0 && obs::monotonic_seconds() < deadline) {
    reap_ready();
    if (live > 0) ::usleep(2000);
  }
  if (live > 0) {
    // Past the deadline: put the stragglers down and reap for real.
    for (Child& child : children_) {
      if (!child.reaped) {
        child.killed = true;
        ::kill(child.pid, SIGKILL);
      }
    }
    for (Child& child : children_) {
      if (child.reaped) continue;
      int status = 0;
      while (::waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
      }
      child.wait_status = status;
      child.reaped = true;
      all_clean = false;
      if (!failure_seen) {
        failure_seen = true;
        if (on_first_failure) on_first_failure();
      }
    }
  }
  return all_clean;
}

}  // namespace oocs::ga
