// ga::Backend — one selector over the two parallel execution
// substrates:
//
//   threads  P std::threads sharing one address space and one DiskFarm
//            (the in-process fast path, run_threads);
//   procs    P forked OS processes, each owning a private DiskFarm of
//            chunk-striped arrays, synchronized through a shared-memory
//            futex barrier and per-proc result slots (run_procs).
//
// Both distribute work identically (round-robin outer tiles), so for a
// fixed seed the output arrays are bit-identical across backends — the
// determinism matrix in tests/ga_test.cpp gates this.
//
// BackendRun wraps the full staged-run lifecycle behind the selector:
// construct (creates the right farm), stage inputs through farm(),
// run(), read outputs back through farm().  `oocsc --proc-backend`,
// bench/table4_parallel_io and the tests all drive this one interface.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/plan.hpp"
#include "dra/farm.hpp"
#include "ga/parallel.hpp"

namespace oocs::cache {
class TileCache;
}

namespace oocs::ga {

enum class Backend {
  kThreads,
  kProcs,
};

[[nodiscard]] bool is_known_backend(std::string_view name) noexcept;
/// "threads, procs" — for unknown-backend error messages.
[[nodiscard]] std::string known_backends();
[[nodiscard]] const char* backend_name(Backend backend) noexcept;
/// Throws oocs::Error listing the valid names for unknown input.
[[nodiscard]] Backend parse_backend(std::string_view name);

struct BackendOptions {
  Backend backend = Backend::kThreads;
  int num_procs = 1;
  bool async_io = false;
  /// Per-proc compute pool width; 0 = OOCS_THREADS env.  Both backends
  /// cap num_procs × threads at the hardware concurrency.
  int compute_threads = 0;
  /// Scratch directory: the POSIX farm directory (threads) or the
  /// stripe root holding the per-proc `proc<k>/` dirs (procs).
  std::string scratch_root;
  /// Tile-cache budget: one shared cache (threads) or split evenly into
  /// process-private caches (procs).  0 = no cache.
  std::int64_t cache_budget_bytes = 0;
  /// RAID-0 stripe chunk in doubles (procs backend).
  std::int64_t chunk_elements = 32768;
  /// Bound on every shm collective and on child teardown: a dead or
  /// wedged worker surfaces as a structured oocs::Error, never a hang.
  double barrier_timeout_seconds = 120.0;
  /// Where worker processes drop their binary trace fragments when
  /// tracing is on ("" = scratch_root).  The launcher lists the written
  /// fragments in ParallelStats::trace_fragments for
  /// obs::write_chrome_trace(os, fragments).  Worker metrics fragments
  /// (always written) land in the same directory and are listed in
  /// ParallelStats::metrics_fragments.
  std::string trace_dir;
  /// When non-empty, every worker installs the crash flight recorder
  /// with `<postmortem_dir>/postmortem-<rank>.json` as its artifact, so
  /// a worker dying on a fatal signal leaves spans + metrics behind.
  std::string postmortem_dir;
};

/// One staged parallel run.  The farm lives for the lifetime of the
/// object: stage inputs into farm() before run(), read outputs back
/// after.  Scratch files (and worker trace fragments) are removed on
/// destruction.
class BackendRun {
 public:
  BackendRun(const core::OocPlan& plan, BackendOptions options);
  ~BackendRun();

  BackendRun(const BackendRun&) = delete;
  BackendRun& operator=(const BackendRun&) = delete;

  [[nodiscard]] dra::DiskFarm& farm() noexcept { return *farm_; }
  [[nodiscard]] const BackendOptions& options() const noexcept { return options_; }

  /// Executes the plan on the selected backend.  Farm stats are reset
  /// first, so the returned stats cover execution only (not input
  /// staging).  Throws oocs::Error on worker failure (procs backend:
  /// nonzero exit, fatal signal, or barrier timeout).
  ParallelStats run();

 private:
  const core::OocPlan& plan_;
  BackendOptions options_;
  std::vector<std::string> trace_fragments_;
  std::vector<std::string> metrics_fragments_;
  // The cache outlives the farm (cached arrays flush through it on
  // farm destruction) — declaration order matters.
  std::unique_ptr<cache::TileCache> cache_;
  std::unique_ptr<dra::DiskFarm> farm_;
};

/// Multi-process execution against pre-staged striped arrays (the
/// low-level entry point; BackendRun::run dispatches here).  Every
/// array the plan touches must already exist under `layout` — stage
/// through a create-mode striped farm that stays alive (or detached)
/// across the call.  `options.backend` is ignored.
ParallelStats run_procs(const core::OocPlan& plan, const dra::StripeLayout& layout,
                        const BackendOptions& options);

}  // namespace oocs::ga
