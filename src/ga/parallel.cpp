#include "ga/parallel.hpp"

#include <barrier>
#include <thread>

#include "common/error.hpp"

namespace oocs::ga {

ParallelStats run_threads(const core::OocPlan& plan, dra::DiskFarm& farm, int num_procs) {
  OOCS_REQUIRE(num_procs >= 1, "num_procs must be >= 1");

  // Pre-create every disk array touched by the plan so the lazy farm
  // never mutates its map concurrently.
  for (const core::PlanBuffer& buffer : plan.buffers) (void)farm.array(buffer.array);

  // One interpreter per process over the whole plan; a barrier between
  // top-level roots makes e.g. the zero-initialization pass of an
  // accumulated output visible before anyone accumulates into it.
  std::barrier sync(num_procs);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_procs));
  for (int proc = 0; proc < num_procs; ++proc) {
    threads.emplace_back([&, proc] {
      try {
        rt::ExecOptions options;
        options.proc_id = proc;
        options.num_procs = num_procs;
        options.root_barrier = [&sync] { sync.arrive_and_wait(); };
        rt::PlanInterpreter interpreter(plan, farm, options);
        (void)interpreter.run();
      } catch (...) {
        {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Leave the barrier so surviving threads do not deadlock.
        sync.arrive_and_drop();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  ParallelStats stats;
  stats.num_procs = num_procs;
  stats.total = farm.total_stats();
  stats.io_seconds = stats.total.seconds;
  return stats;
}

ParallelStats simulate(const core::OocPlan& plan, int num_procs, dra::DiskModel model) {
  OOCS_REQUIRE(num_procs >= 1, "num_procs must be >= 1");

  // One dry-run walk counts every collective I/O call and its volume.
  dra::DiskFarm farm = dra::DiskFarm::sim(plan.program, model);
  rt::ExecOptions options;
  options.dry_run = true;
  rt::PlanInterpreter interpreter(plan, farm, options);
  (void)interpreter.run();
  const dra::IoStats total = farm.total_stats();

  // Collective semantics: each call moves 1/P of its bytes from every
  // process's local disk concurrently.
  const double p = static_cast<double>(num_procs);
  const double per_proc =
      static_cast<double>(total.read_calls + total.write_calls) * model.seek_seconds +
      static_cast<double>(total.bytes_read) / (p * model.read_bandwidth_bytes_per_s) +
      static_cast<double>(total.bytes_written) / (p * model.write_bandwidth_bytes_per_s);

  ParallelStats stats;
  stats.num_procs = num_procs;
  stats.total = total;
  stats.io_seconds = per_proc;
  stats.per_proc_seconds.assign(static_cast<std::size_t>(num_procs), per_proc);
  return stats;
}

}  // namespace oocs::ga
