#include "ga/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oocs::ga {

ParallelStats run_threads(const core::OocPlan& plan, dra::DiskFarm& farm, int num_procs,
                          bool async_io, int compute_threads, cache::TileCache* tile_cache) {
  OOCS_REQUIRE(num_procs >= 1, "num_procs must be >= 1");
  OOCS_REQUIRE(compute_threads >= 0, "compute_threads must be >= 0");

  // Every process runs its own compute pool; cap the product at the
  // hardware concurrency so P processes never oversubscribe the cores
  // (GA gives each process one node's cores — we give each 1/P of one
  // machine's).
  const int requested = ThreadPool::resolve_threads(compute_threads);
  const int per_proc_cap = std::max(1, ThreadPool::hardware_threads() / num_procs);
  const int effective_threads = std::min(requested, per_proc_cap);

  // Pre-create every disk array touched by the plan so the lazy farm
  // never mutates its map concurrently.
  for (const core::PlanBuffer& buffer : plan.buffers) (void)farm.array(buffer.array);

  // One interpreter per process over the whole plan; a barrier between
  // top-level roots makes e.g. the zero-initialization pass of an
  // accumulated output visible before anyone accumulates into it.  The
  // interpreter drains its async engine before arriving, so write-behind
  // effects are ordered the same way.
  // The barrier's completion step runs exactly once per stage, after
  // every process has drained its engine and flushed the cache: the one
  // point where a cross-process farm snapshot is an exact stage
  // boundary.  The deltas between consecutive snapshots are the
  // measured per-stage I/O of the whole parallel run.
  const double wall_t0 = obs::monotonic_seconds();
  const dra::IoStats run_start = farm.total_stats();
  std::vector<dra::IoStats> stage_snapshots;
  stage_snapshots.reserve(plan.roots.size());
  std::barrier sync(num_procs, [&]() noexcept { stage_snapshots.push_back(farm.total_stats()); });
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<rt::ExecStats> proc_stats(static_cast<std::size_t>(num_procs));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_procs));
  for (int proc = 0; proc < num_procs; ++proc) {
    threads.emplace_back([&, proc] {
      obs::set_current_proc(proc);
      obs::set_thread_name("proc-" + std::to_string(proc));
      try {
        rt::ExecOptions options;
        options.proc_id = proc;
        options.num_procs = num_procs;
        options.async_io = async_io;
        options.compute_threads = effective_threads;
        options.tile_cache = tile_cache;
        options.root_barrier = [&sync] {
          OOCS_SPAN("ga", "barrier");
          sync.arrive_and_wait();
        };
        rt::PlanInterpreter interpreter(plan, farm, options);
        proc_stats[static_cast<std::size_t>(proc)] = interpreter.run();
      } catch (...) {
        {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Leave the barrier so surviving threads do not deadlock.
        sync.arrive_and_drop();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  ParallelStats stats;
  stats.backend = "threads";
  stats.num_procs = num_procs;
  stats.wall_seconds = obs::monotonic_seconds() - wall_t0;
  stats.total = farm.total_stats().since(run_start);
  stats.io_seconds = stats.total.seconds;
  stats.compute_threads = effective_threads;
  for (const rt::ExecStats& ps : proc_stats) {
    stats.busy_seconds += ps.busy_seconds;
    stats.stall_seconds += ps.stall_seconds;
    stats.queue_depth_hwm = std::max(stats.queue_depth_hwm, ps.queue_depth_hwm);
    stats.measured_compute_seconds += ps.compute_seconds;
  }

  // Merge the per-process stage views: exact barrier-to-barrier farm
  // deltas for I/O; critical-path (max over processes) for the time
  // axes, since processes run the stage concurrently.
  const std::size_t num_stages = proc_stats[0].stages.size();
  stats.stages.resize(num_stages);
  dra::IoStats prev = run_start;
  for (std::size_t s = 0; s < num_stages; ++s) {
    rt::StageStats& stage = stats.stages[s];
    stage.name = proc_stats[0].stages[s].name;
    if (s < stage_snapshots.size()) {
      stage.io = stage_snapshots[s].since(prev);
      prev = stage_snapshots[s];
    }
    for (const rt::ExecStats& ps : proc_stats) {
      stage.compute_seconds = std::max(stage.compute_seconds, ps.stages[s].compute_seconds);
      stage.modeled_compute_seconds =
          std::max(stage.modeled_compute_seconds, ps.stages[s].modeled_compute_seconds);
      stage.wall_seconds = std::max(stage.wall_seconds, ps.stages[s].wall_seconds);
    }
    stats.serial_seconds += stage.io.seconds + stage.compute_seconds;
    stats.overlap_seconds += std::max(stage.io.seconds, stage.compute_seconds);
    stats.compute_seconds += stage.compute_seconds;
  }
  return stats;
}

ParallelStats simulate(const core::OocPlan& plan, int num_procs, dra::DiskModel model,
                       double modeled_flops_per_second) {
  OOCS_REQUIRE(num_procs >= 1, "num_procs must be >= 1");

  // One dry-run walk counts every collective I/O call and its volume,
  // and records the per-stage (per top-level root) io/compute split.
  dra::DiskFarm farm = dra::DiskFarm::sim(plan.program, model);
  rt::ExecOptions options;
  options.dry_run = true;
  if (modeled_flops_per_second > 0) {
    options.modeled_flops_per_second = modeled_flops_per_second;
  }
  rt::PlanInterpreter interpreter(plan, farm, options);
  const rt::ExecStats exec = interpreter.run();
  const dra::IoStats total = farm.total_stats();

  // Collective semantics: each call moves 1/P of its bytes from every
  // process's local disk concurrently, and compute is data-parallel.
  const double p = static_cast<double>(num_procs);
  const auto per_proc_io = [&](const dra::IoStats& io) {
    return static_cast<double>(io.read_calls + io.write_calls) * model.seek_seconds +
           static_cast<double>(io.bytes_read) / (p * model.read_bandwidth_bytes_per_s) +
           static_cast<double>(io.bytes_written) / (p * model.write_bandwidth_bytes_per_s);
  };

  ParallelStats stats;
  stats.backend = "simulate";
  stats.num_procs = num_procs;
  stats.total = total;
  stats.io_seconds = per_proc_io(total);
  stats.per_proc_seconds.assign(static_cast<std::size_t>(num_procs), stats.io_seconds);
  stats.stages.reserve(exec.stages.size());
  for (const rt::StageStats& stage : exec.stages) {
    const double io = per_proc_io(stage.io);
    const double compute = stage.compute_seconds / p;
    stats.compute_seconds += compute;
    stats.serial_seconds += io + compute;
    stats.overlap_seconds += std::max(io, compute);
    // Predicted stage view for the drift report: aggregate volumes,
    // per-process collective time model.
    rt::StageStats modeled = stage;
    modeled.io.seconds = io;
    modeled.compute_seconds = compute;
    modeled.modeled_compute_seconds = compute;
    modeled.wall_seconds = 0;
    stats.stages.push_back(std::move(modeled));
  }
  return stats;
}

void publish_metrics(const ParallelStats& stats) {
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("ga.num_procs").set(stats.num_procs);
  m.counter("ga.compute_threads").set(stats.compute_threads);
  m.gauge("ga.wall_seconds").set(stats.wall_seconds);
  m.counter("ga.stages").set(static_cast<std::int64_t>(stats.stages.size()));
  m.gauge("ga.io_seconds").set(stats.io_seconds);
  m.gauge("ga.compute_seconds").set(stats.compute_seconds);
  m.gauge("ga.serial_seconds").set(stats.serial_seconds);
  m.gauge("ga.overlap_seconds").set(stats.overlap_seconds);
  m.gauge("ga.measured_compute_seconds").set(stats.measured_compute_seconds);
  m.gauge("aio.busy_seconds").set(stats.busy_seconds);
  m.gauge("aio.stall_seconds").set(stats.stall_seconds);
  m.counter("aio.queue_depth_hwm").set(stats.queue_depth_hwm);
  m.counter("io.bytes_read").set(stats.total.bytes_read);
  m.counter("io.bytes_written").set(stats.total.bytes_written);
  m.counter("io.read_calls").set(stats.total.read_calls);
  m.counter("io.write_calls").set(stats.total.write_calls);
  m.gauge("io.seconds").set(stats.total.seconds);
  m.counter("cache.hits").set(stats.total.cache_hits);
  m.counter("cache.misses").set(stats.total.cache_misses);
  m.counter("cache.hit_bytes").set(stats.total.cache_hit_bytes);
  m.counter("cache.evictions").set(stats.total.cache_evictions);
  m.counter("cache.writebacks").set(stats.total.cache_writebacks);
  m.counter("cache.writeback_bytes").set(stats.total.cache_writeback_bytes);
}

}  // namespace oocs::ga
