#include "ga/backend.hpp"

#include <sys/wait.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <type_traits>

#include "cache/cached_array.hpp"
#include "cache/tile_cache.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "ga/process_group.hpp"
#include "ga/shm.hpp"
#include "obs/clock.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/interpreter.hpp"

namespace oocs::ga {

// ---------------------------------------------------------------------
// Backend names

bool is_known_backend(std::string_view name) noexcept {
  return name == "threads" || name == "procs";
}

std::string known_backends() { return "threads, procs"; }

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kThreads:
      return "threads";
    case Backend::kProcs:
      return "procs";
  }
  return "?";
}

Backend parse_backend(std::string_view name) {
  if (name == "threads") return Backend::kThreads;
  if (name == "procs") return Backend::kProcs;
  throw Error("unknown backend '" + std::string(name) + "' (valid: " + known_backends() + ")");
}

// ---------------------------------------------------------------------
// Shared-memory result slots
//
// Children cannot return rt::ExecStats by value — they are in another
// address space — so each child flattens its stats into a fixed POD
// slot in the ShmArena before exiting.  IoStats is itself POD (the
// static_assert in dra/disk_array.cpp pins its layout), so the whole
// allreduce is memcpy + field sums on the parent side.

namespace {

/// Collective state at the head of the arena.
struct GroupHeader {
  ShmBarrier barrier;
  std::atomic<std::int32_t> abort_flag{0};

  explicit GroupHeader(std::int32_t parties) : barrier(parties) {}
};

struct ProcSlot {
  std::atomic<std::int32_t> done{0};
  std::atomic<std::int32_t> error{0};
  char error_msg[240] = {};
  dra::IoStats io;
  double wall_seconds = 0;
  double compute_seconds = 0;  // measured compute wall (ExecStats)
  double busy_seconds = 0;
  double stall_seconds = 0;
  std::int64_t queue_depth_hwm = 0;
  std::int32_t num_stages = 0;
  std::int32_t compute_threads = 1;
};

struct StageSlot {
  char name[64] = {};
  dra::IoStats io;
  double compute_seconds = 0;
  double modeled_compute_seconds = 0;
  double wall_seconds = 0;
};

static_assert(std::is_trivially_copyable_v<dra::IoStats>);

constexpr std::size_t align_up(std::size_t offset) { return (offset + 63) & ~std::size_t{63}; }

struct ArenaLayout {
  std::size_t header = 0;
  std::size_t procs = 0;
  std::size_t stages = 0;
  std::size_t total = 0;
  int num_procs = 0;
  std::size_t num_stages = 0;

  ArenaLayout(int num_procs_in, std::size_t num_stages_in) {
    num_procs = num_procs_in;
    num_stages = num_stages_in;
    header = 0;
    procs = align_up(sizeof(GroupHeader));
    stages = align_up(procs + sizeof(ProcSlot) * static_cast<std::size_t>(num_procs));
    total = align_up(stages +
                     sizeof(StageSlot) * static_cast<std::size_t>(num_procs) * num_stages);
  }

  ProcSlot* proc(ShmArena& arena, int rank) const {
    return arena.at<ProcSlot>(procs + sizeof(ProcSlot) * static_cast<std::size_t>(rank));
  }
  StageSlot* stage(ShmArena& arena, int rank, std::size_t s) const {
    return arena.at<StageSlot>(
        stages + sizeof(StageSlot) * (static_cast<std::size_t>(rank) * num_stages + s));
  }
};

void copy_trunc(char* dst, std::size_t cap, std::string_view src) noexcept {
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// Worker-process body: attach a private striped farm (plus an optional
/// process-private tile cache), run the plan with the shm barrier as
/// the root collective, flatten the stats into this rank's slot.
/// Returns the child's exit code; never throws past here.
int child_main(int rank, const core::OocPlan& plan, const dra::StripeLayout& layout,
               const BackendOptions& options, const ArenaLayout& slots, ShmArena& arena,
               int effective_threads) {
  GroupHeader* group = arena.at<GroupHeader>(slots.header);
  ProcSlot* slot = slots.proc(arena, rank);
  try {
    obs::set_current_proc(rank);
    obs::set_thread_name("proc-" + std::to_string(rank));
    // Inherited ring buffers hold the parent's pre-fork events, and the
    // inherited registry holds the parent's pre-fork counts (staging
    // I/O etc.); both belong to the parent, not this worker — clear so
    // the fragments this worker writes are strictly its own.
    obs::trace_clear();
    obs::metrics().reset();
    if (!options.postmortem_dir.empty()) {
      obs::FlightRecorderOptions recorder;
      recorder.path = options.postmortem_dir + "/postmortem-" + std::to_string(rank) + ".json";
      obs::install_flight_recorder(recorder);
    }

    // The cache must outlive the farm (cached arrays flush through it
    // on farm destruction) — declared first, destroyed last.
    std::unique_ptr<cache::TileCache> cache;
    dra::DiskFarm farm = dra::DiskFarm::striped(plan.program, layout, /*attach=*/true);
    if (options.cache_budget_bytes > 0) {
      cache::TileCacheOptions cache_options;
      cache_options.budget_bytes = std::max<std::int64_t>(
          options.cache_budget_bytes / options.num_procs, std::int64_t{64} << 10);
      cache = std::make_unique<cache::TileCache>(cache_options);
      cache::attach_cache(farm, *cache);
    }

    rt::ExecOptions exec;
    exec.proc_id = rank;
    exec.num_procs = options.num_procs;
    exec.async_io = options.async_io;
    exec.compute_threads = effective_threads;
    exec.tile_cache = cache.get();
    exec.root_barrier = [&] {
      // The interpreter has already drained its async engine and
      // flushed the cache.  clear() additionally drops the resident
      // tiles: the next stage may read data another *process* wrote,
      // which a process-private cache can never observe.
      if (cache) cache->clear();
      OOCS_SPAN("ga", "barrier");
      switch (group->barrier.arrive_and_wait(group->abort_flag,
                                             options.barrier_timeout_seconds)) {
        case BarrierWait::kOk:
          return;
        case BarrierWait::kAborted:
          throw Error("barrier aborted: a peer process failed");
        case BarrierWait::kTimeout:
          throw Error("barrier timeout after " +
                      std::to_string(options.barrier_timeout_seconds) + "s");
      }
    };

    rt::PlanInterpreter interpreter(plan, farm, exec);
    const rt::ExecStats stats = interpreter.run();

    slot->io = stats.io;
    slot->wall_seconds = stats.wall_seconds;
    slot->compute_seconds = stats.compute_seconds;
    slot->busy_seconds = stats.busy_seconds;
    slot->stall_seconds = stats.stall_seconds;
    slot->queue_depth_hwm = stats.queue_depth_hwm;
    slot->compute_threads = stats.compute_threads;
    slot->num_stages = static_cast<std::int32_t>(stats.stages.size());
    for (std::size_t s = 0; s < stats.stages.size() && s < slots.num_stages; ++s) {
      StageSlot* stage = slots.stage(arena, rank, s);
      copy_trunc(stage->name, sizeof(stage->name), stats.stages[s].name);
      stage->io = stats.stages[s].io;
      stage->compute_seconds = stats.stages[s].compute_seconds;
      stage->modeled_compute_seconds = stats.stages[s].modeled_compute_seconds;
      stage->wall_seconds = stats.stages[s].wall_seconds;
    }

    const std::string dir = options.trace_dir.empty() ? layout.root : options.trace_dir;
    if (obs::trace_enabled()) {
      std::ofstream os(dir + "/trace-frag-" + std::to_string(rank) + ".trc", std::ios::binary);
      if (os) obs::write_trace_fragment(os);
    }
    // The metrics fragment is unconditional: this worker's registry
    // (interpreter counters published above the trace gate) dies with
    // its address space, and the parent merges the fragments into the
    // per-proc + aggregate metrics document.
    rt::publish_metrics(stats);
    {
      std::ofstream os(dir + "/metrics-frag-" + std::to_string(rank) + ".mtr", std::ios::binary);
      if (os) obs::write_metrics_fragment(os);
    }

    slot->done.store(1, std::memory_order_release);
    return 0;
  } catch (const std::exception& e) {
    copy_trunc(slot->error_msg, sizeof(slot->error_msg), e.what());
    slot->error.store(1, std::memory_order_release);
    group->abort_flag.store(1, std::memory_order_release);
    return 1;
  } catch (...) {
    copy_trunc(slot->error_msg, sizeof(slot->error_msg), "unknown exception");
    slot->error.store(1, std::memory_order_release);
    group->abort_flag.store(1, std::memory_order_release);
    return 1;
  }
}

/// Human description of one abnormal child exit for the thrown Error.
std::string describe_failure(const ProcessGroup::Child& child, const ProcSlot& slot,
                             double timeout_seconds) {
  std::string what = "ga: proc " + std::to_string(child.rank);
  if (child.killed) {
    what += " timed out after " + std::to_string(timeout_seconds) + "s (SIGKILLed)";
  } else if (WIFSIGNALED(child.wait_status)) {
    what += " killed by signal " + std::to_string(WTERMSIG(child.wait_status));
  } else {
    what += " exited with status " + std::to_string(WEXITSTATUS(child.wait_status));
  }
  if (slot.error.load(std::memory_order_acquire) != 0) {
    what += std::string(": ") + slot.error_msg;
  }
  return what;
}

}  // namespace

// ---------------------------------------------------------------------
// run_procs

ParallelStats run_procs(const core::OocPlan& plan, const dra::StripeLayout& layout,
                        const BackendOptions& options) {
  const int num_procs = options.num_procs;
  OOCS_REQUIRE(num_procs >= 1, "num_procs must be >= 1");
  OOCS_REQUIRE(layout.stripes == num_procs, "stripe count must match num_procs");

  const int requested = ThreadPool::resolve_threads(options.compute_threads);
  const int per_proc_cap = std::max(1, ThreadPool::hardware_threads() / num_procs);
  const int effective_threads = std::min(requested, per_proc_cap);

  const std::size_t num_stages = plan.roots.size();
  const ArenaLayout slots(num_procs, num_stages);
  ShmArena arena(slots.total);
  arena.construct<GroupHeader>(slots.header, static_cast<std::int32_t>(num_procs));
  for (int rank = 0; rank < num_procs; ++rank) {
    arena.construct<ProcSlot>(slots.procs + sizeof(ProcSlot) * static_cast<std::size_t>(rank));
    for (std::size_t s = 0; s < num_stages; ++s) {
      arena.construct<StageSlot>(
          slots.stages +
          sizeof(StageSlot) * (static_cast<std::size_t>(rank) * num_stages + s));
    }
  }
  GroupHeader* group = arena.at<GroupHeader>(slots.header);

  const double t0 = obs::monotonic_seconds();
  ProcessGroup procs;
  procs.launch(num_procs, [&](int rank) {
    return child_main(rank, plan, layout, options, slots, arena, effective_threads);
  });

  // Worst-case clean runtime is bounded by the per-barrier timeout times
  // the number of collectives (every stage ends in one), plus slack for
  // fork/exit and the final stats flush.
  const double join_timeout =
      options.barrier_timeout_seconds * static_cast<double>(num_stages + 1) + 30.0;
  const bool all_clean = procs.join(join_timeout, [&] {
    // First abnormal exit: fail the group fast instead of letting the
    // survivors ride out their barrier timeout.
    group->abort_flag.store(1, std::memory_order_release);
  });
  const double t1 = obs::monotonic_seconds();

  if (!all_clean) {
    for (const ProcessGroup::Child& child : procs.children()) {
      const bool clean = !child.killed && WIFEXITED(child.wait_status) &&
                         WEXITSTATUS(child.wait_status) == 0;
      if (!clean) {
        throw Error(
            describe_failure(child, *slots.proc(arena, child.rank), join_timeout));
      }
    }
    throw Error("ga: process group failed");  // unreachable
  }
  for (int rank = 0; rank < num_procs; ++rank) {
    if (slots.proc(arena, rank)->done.load(std::memory_order_acquire) != 1) {
      throw Error("ga: proc " + std::to_string(rank) + " exited without publishing results");
    }
  }

  // Allreduce of the per-proc snapshots: traffic sums, time axes take
  // the max over procs (they ran concurrently).
  ParallelStats stats;
  stats.backend = "procs";
  stats.num_procs = num_procs;
  stats.compute_threads = effective_threads;
  stats.wall_seconds = t1 - t0;
  stats.per_proc_seconds.reserve(static_cast<std::size_t>(num_procs));
  for (int rank = 0; rank < num_procs; ++rank) {
    const ProcSlot& slot = *slots.proc(arena, rank);
    stats.total.merge(slot.io);
    stats.per_proc_seconds.push_back(slot.io.seconds);
    stats.io_seconds = std::max(stats.io_seconds, slot.io.seconds);
    stats.busy_seconds += slot.busy_seconds;
    stats.stall_seconds += slot.stall_seconds;
    stats.queue_depth_hwm = std::max(stats.queue_depth_hwm, slot.queue_depth_hwm);
    stats.measured_compute_seconds += slot.compute_seconds;
  }

  stats.stages.resize(num_stages);
  for (std::size_t s = 0; s < num_stages; ++s) {
    rt::StageStats& stage = stats.stages[s];
    double max_io = 0;
    for (int rank = 0; rank < num_procs; ++rank) {
      const StageSlot& slot = *slots.stage(arena, rank, s);
      if (stage.name.empty()) stage.name = slot.name;
      stage.io.merge(slot.io);
      max_io = std::max(max_io, slot.io.seconds);
      stage.compute_seconds = std::max(stage.compute_seconds, slot.compute_seconds);
      stage.modeled_compute_seconds =
          std::max(stage.modeled_compute_seconds, slot.modeled_compute_seconds);
      stage.wall_seconds = std::max(stage.wall_seconds, slot.wall_seconds);
    }
    // Time models use the per-proc critical path, not the aggregate
    // disk-seconds that stage.io.seconds now carries.
    stats.serial_seconds += max_io + stage.compute_seconds;
    stats.overlap_seconds += std::max(max_io, stage.compute_seconds);
    stats.compute_seconds += stage.compute_seconds;
  }

  {
    const std::string dir = options.trace_dir.empty() ? layout.root : options.trace_dir;
    for (int rank = 0; rank < num_procs; ++rank) {
      if (obs::trace_enabled()) {
        const std::string path = dir + "/trace-frag-" + std::to_string(rank) + ".trc";
        if (std::filesystem::exists(path)) stats.trace_fragments.push_back(path);
      }
      const std::string mpath = dir + "/metrics-frag-" + std::to_string(rank) + ".mtr";
      if (std::filesystem::exists(mpath)) stats.metrics_fragments.push_back(mpath);
    }
  }
  return stats;
}

// ---------------------------------------------------------------------
// BackendRun

BackendRun::BackendRun(const core::OocPlan& plan, BackendOptions options)
    : plan_(plan), options_(std::move(options)) {
  OOCS_REQUIRE(!options_.scratch_root.empty(), "backend run needs a scratch directory");
  OOCS_REQUIRE(options_.num_procs >= 1, "num_procs must be >= 1");
  if (options_.backend == Backend::kThreads) {
    if (options_.cache_budget_bytes > 0) {
      cache::TileCacheOptions cache_options;
      cache_options.budget_bytes = options_.cache_budget_bytes;
      cache_ = std::make_unique<cache::TileCache>(cache_options);
    }
    farm_ = std::make_unique<dra::DiskFarm>(
        dra::DiskFarm::posix(plan.program, options_.scratch_root));
    if (cache_) cache::attach_cache(*farm_, *cache_);
  } else {
    // The parent's farm creates the stripe files and stages/reads the
    // data; workers attach their own farms (and caches) in child_main.
    dra::StripeLayout layout;
    layout.root = options_.scratch_root;
    layout.stripes = options_.num_procs;
    layout.chunk_elements = options_.chunk_elements;
    farm_ = std::make_unique<dra::DiskFarm>(
        dra::DiskFarm::striped(plan.program, layout, /*attach=*/false));
  }
}

BackendRun::~BackendRun() {
  // Remove worker trace fragments and (after the farm has unlinked its
  // stripe files) the now-empty per-proc scratch dirs.
  std::error_code ec;
  for (const std::string& path : trace_fragments_) std::filesystem::remove(path, ec);
  for (const std::string& path : metrics_fragments_) std::filesystem::remove(path, ec);
  farm_.reset();
  if (options_.backend == Backend::kProcs) {
    for (int s = 0; s < options_.num_procs; ++s) {
      std::filesystem::remove(options_.scratch_root + "/proc" + std::to_string(s), ec);
    }
  }
}

ParallelStats BackendRun::run() {
  // Materialize every array the plan touches: the procs backend needs
  // the stripe files to exist before workers attach, and both backends
  // need the farm map frozen before threads share it.
  for (const core::PlanBuffer& buffer : plan_.buffers) (void)farm_->array(buffer.array);
  // Execution-only stats: input staging happened through this farm too.
  farm_->reset_stats();

  ParallelStats stats;
  if (options_.backend == Backend::kThreads) {
    stats = run_threads(plan_, *farm_, options_.num_procs, options_.async_io,
                        options_.compute_threads, cache_.get());
  } else {
    dra::StripeLayout layout;
    layout.root = options_.scratch_root;
    layout.stripes = options_.num_procs;
    layout.chunk_elements = options_.chunk_elements;
    stats = run_procs(plan_, layout, options_);
  }
  trace_fragments_ = stats.trace_fragments;
  metrics_fragments_ = stats.metrics_fragments;
  return stats;
}

}  // namespace oocs::ga
