// Process-shared memory primitives for the multi-process GA backend.
//
// ShmArena: an anonymous POSIX shared-memory mapping (shm_open +
// ftruncate + mmap, name unlinked immediately) created *before* fork.
// Children inherit the mapping at the same virtual address, so plain
// pointers into the arena stay valid across the process group — the
// arena holds the barrier, the abort flag, and the per-proc result
// slots (ga/backend.cpp).
//
// ShmBarrier: a sense-reversing barrier on futexes.  std::barrier
// cannot span processes; FUTEX_WAIT/FUTEX_WAKE on a shared mapping can
// (note: *without* FUTEX_PRIVATE_FLAG).  Waits are sliced so every
// waiter periodically rechecks an abort flag and its deadline — a dead
// peer turns into a structured error instead of a hang.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace oocs::ga {

/// Shared mapping visible to this process and every child forked after
/// construction.  Zero-initialized.  Unmapped (not leaked) on
/// destruction; the kernel object dies with the last mapping.
class ShmArena {
 public:
  explicit ShmArena(std::size_t bytes);
  ~ShmArena();

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  [[nodiscard]] void* data() noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Placement-constructs a T at byte `offset` (parent side, pre-fork).
  template <typename T, typename... Args>
  T* construct(std::size_t offset, Args&&... args) {
    return ::new (static_cast<char*>(data_) + offset) T(static_cast<Args&&>(args)...);
  }

  /// The T previously constructed at `offset` (any process).
  template <typename T>
  [[nodiscard]] T* at(std::size_t offset) noexcept {
    return reinterpret_cast<T*>(static_cast<char*>(data_) + offset);
  }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Outcome of one barrier arrival.
enum class BarrierWait {
  kOk,       ///< every party arrived
  kAborted,  ///< the group abort flag was raised while waiting
  kTimeout,  ///< deadline expired (a peer is hung or dead)
};

/// Sense-reversing futex barrier for `parties` processes.  Must live in
/// process-shared memory (an ShmArena).  Trivially layout-stable: two
/// futex words and the party count.
class ShmBarrier {
 public:
  explicit ShmBarrier(std::int32_t parties) noexcept : parties_(parties) {}

  /// Arrives and waits for the other parties.  Returns kAborted as soon
  /// as `abort_flag` becomes nonzero (checked every wait slice), or
  /// kTimeout after `timeout_seconds`.  After a non-kOk return the
  /// barrier is broken for the whole group — callers must abort.
  BarrierWait arrive_and_wait(const std::atomic<std::int32_t>& abort_flag,
                              double timeout_seconds) noexcept;

 private:
  std::atomic<std::int32_t> count_{0};  // arrivals in the current phase
  std::atomic<std::int32_t> sense_{0};  // phase flip, the futex word
  std::int32_t parties_;
};

static_assert(std::atomic<std::int32_t>::is_always_lock_free,
              "futex barrier needs lock-free 32-bit atomics");

}  // namespace oocs::ga
