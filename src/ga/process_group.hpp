// ProcessGroup: the fork launcher of the multi-process GA backend.
//
// launch() forks one real OS process per virtual proc; each child runs
// the supplied function and terminates with std::_Exit (no atexit
// handlers, no stack unwinding into the parent's state).  join() reaps
// the group with a bounded deadline: the first abnormal child exit
// triggers an abort callback (ga/backend.cpp raises the shared abort
// flag so peers blocked on the ShmBarrier fail fast), and children
// still alive past the deadline are SIGKILLed — a wedged worker can
// slow a run down, never hang it.
#pragma once

#include <sys/types.h>

#include <functional>
#include <vector>

namespace oocs::ga {

class ProcessGroup {
 public:
  struct Child {
    int rank = -1;
    pid_t pid = -1;
    int wait_status = 0;   ///< raw waitpid status (valid once reaped)
    bool reaped = false;
    bool killed = false;   ///< SIGKILLed by join() past the deadline
  };

  /// Forks `num_procs` children; child `rank` runs `body(rank)` and
  /// exits with its return value (or 70 on an escaped exception —
  /// bodies are expected to catch and report their own errors).
  /// Parent-side fork failure aborts already-launched children and
  /// throws oocs::Error.
  void launch(int num_procs, const std::function<int(int rank)>& body);

  /// Reaps every child, polling with WNOHANG.  `on_first_failure` runs
  /// once, when the first abnormally-exiting child (nonzero status or
  /// signal) is reaped — while siblings are still running.  Children
  /// alive after `timeout_seconds` are SIGKILLed and reaped.  Returns
  /// true iff every child exited zero without being killed.
  bool join(double timeout_seconds, const std::function<void()>& on_first_failure = {});

  [[nodiscard]] const std::vector<Child>& children() const noexcept { return children_; }

 private:
  std::vector<Child> children_;
};

}  // namespace oocs::ga
