#include "baseline/uniform_sampling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "core/greedy.hpp"
#include "trans/tiled.hpp"

namespace oocs::baseline {

namespace {

/// Log-uniform sample values for one dimension: {1, 2, 4, ..., N}.
std::vector<std::int64_t> log_grid(std::int64_t extent, int samples_per_dim) {
  std::vector<std::int64_t> values;
  for (std::int64_t v = 1; v < extent; v *= 2) values.push_back(v);
  values.push_back(extent);
  if (samples_per_dim > 0 && static_cast<int>(values.size()) > samples_per_dim) {
    // Thin to ~samples_per_dim values, keeping the endpoints.
    std::vector<std::int64_t> thinned;
    const double step = static_cast<double>(values.size() - 1) /
                        static_cast<double>(samples_per_dim - 1);
    for (int k = 0; k < samples_per_dim; ++k) {
      thinned.push_back(values[static_cast<std::size_t>(std::llround(k * step))]);
    }
    thinned.erase(std::unique(thinned.begin(), thinned.end()), thinned.end());
    return thinned;
  }
  return values;
}

}  // namespace

BaselineResult uniform_sampling_synthesize(const ir::Program& program,
                                           const UniformSamplingOptions& options) {
  Stopwatch timer;
  const trans::TiledProgram tiled(program);
  core::Enumeration enumeration = core::enumerate_placements(tiled, options.synthesis);
  core::GreedyEvaluator evaluator(program, enumeration, options.synthesis);

  const std::vector<std::string>& indices = enumeration.loop_indices;
  std::vector<std::vector<std::int64_t>> grids;
  grids.reserve(indices.size());
  std::int64_t total_points = 1;
  for (const std::string& index : indices) {
    grids.push_back(log_grid(program.range(index), options.samples_per_dim));
    total_points *= static_cast<std::int64_t>(grids.back().size());
  }

  BaselineResult result;
  result.points_total = total_points;
  result.best_disk_bytes = std::numeric_limits<double>::infinity();
  std::vector<int> best_choice;
  std::map<std::string, std::int64_t> best_tiles;

  std::vector<std::size_t> cursor(indices.size(), 0);
  std::vector<double> point(indices.size(), 1.0);

  while (true) {
    if (options.max_points >= 0 && result.points_evaluated >= options.max_points) break;
    ++result.points_evaluated;
    for (std::size_t d = 0; d < indices.size(); ++d) {
      point[d] = static_cast<double>(grids[d][cursor[d]]);
    }

    const core::GreedyEvaluator::PointResult placed = evaluator.place(point);
    if (placed.feasible) {
      ++result.points_feasible;
      if (placed.cost < result.best_disk_bytes) {
        result.best_disk_bytes = placed.cost;
        best_choice = placed.choice;
        best_tiles.clear();
        for (std::size_t d = 0; d < indices.size(); ++d) {
          best_tiles[indices[d]] = grids[d][cursor[d]];
        }
      }
    }

    // Odometer over the grids.
    std::size_t d = 0;
    for (; d < cursor.size(); ++d) {
      if (++cursor[d] < grids[d].size()) break;
      cursor[d] = 0;
    }
    if (d == cursor.size()) break;
  }

  if (best_choice.empty()) {
    throw InfeasibleError("uniform sampling found no feasible placement/tiling point");
  }

  core::Decisions decisions;
  decisions.tile_sizes = best_tiles;
  decisions.option_index = best_choice;
  result.plan = core::build_plan(tiled, enumeration, decisions);
  result.decisions = std::move(decisions);
  result.enumeration = std::move(enumeration);
  result.seconds = timer.seconds();
  log::info("uniform sampling: ", result.points_evaluated, "/", result.points_total,
            " points, best ", result.best_disk_bytes, " in ", result.seconds, "s");
  return result;
}

}  // namespace oocs::baseline
