// The "Uniform Sampling Approach" baseline (paper §5, from Krishnan's
// MS thesis): the memory-to-cache data-locality algorithm of Cociorva et
// al. extended to the disk-memory hierarchy.
//
// For each combination of tile sizes — the tile-size space is sampled
// log-uniformly along every dimension — disk I/O statements are placed
// greedily: each array starts at its outermost (cheapest-I/O) candidate
// placement and is pushed inside loops until the memory limit holds.
// The whole sampled space is searched by brute force.  This is the
// approach the DCS-based synthesis is orders of magnitude faster than
// (Table 2) and slightly better than (Table 3).
#pragma once

#include <cstdint>

#include "core/synthesize.hpp"

namespace oocs::baseline {

struct UniformSamplingOptions {
  core::SynthesisOptions synthesis;
  /// Log-uniform samples per dimension: {1, 2, 4, ..., N}.  A value
  /// k > 0 thins the grid to ~k values per dimension; 0 keeps all.
  int samples_per_dim = 0;
  /// Evaluate at most this many points (-1 = the whole grid).  Used by
  /// the Table 2 bench to measure per-point cost and extrapolate the
  /// full-grid time without hours of compute.
  std::int64_t max_points = -1;
};

struct BaselineResult {
  core::OocPlan plan;
  core::Decisions decisions;
  core::Enumeration enumeration;
  /// Best total disk traffic found (bytes).
  double best_disk_bytes = 0;
  std::int64_t points_evaluated = 0;
  std::int64_t points_feasible = 0;
  /// Size of the full sampled grid (product of per-dim sample counts).
  std::int64_t points_total = 0;
  double seconds = 0;
  [[nodiscard]] double seconds_per_point() const {
    return points_evaluated > 0 ? seconds / static_cast<double>(points_evaluated) : 0;
  }
};

/// Runs the baseline synthesis.  Throws InfeasibleError if no sampled
/// point admits a feasible greedy placement.
[[nodiscard]] BaselineResult uniform_sampling_synthesize(const ir::Program& program,
                                                         const UniformSamplingOptions& options);

}  // namespace oocs::baseline
