#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

#include "obs/clock.hpp"

namespace oocs::log {

namespace {

Level initial_level() {
  // OOCS_LOG_LEVEL is the documented knob; OOCS_LOG is kept as an alias.
  const char* env = std::getenv("OOCS_LOG_LEVEL");
  if (env == nullptr) env = std::getenv("OOCS_LOG");
  if (env == nullptr) return Level::Warn;
  if (std::strcmp(env, "error") == 0) return Level::Error;
  if (std::strcmp(env, "warn") == 0) return Level::Warn;
  if (std::strcmp(env, "info") == 0) return Level::Info;
  if (std::strcmp(env, "debug") == 0) return Level::Debug;
  return Level::Warn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> storage{static_cast<int>(initial_level())};
  return storage;
}

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::Error: return "E";
    case Level::Warn: return "W";
    case Level::Info: return "I";
    case Level::Debug: return "D";
  }
  return "?";
}

}  // namespace

Level level() noexcept { return static_cast<Level>(level_storage().load(std::memory_order_relaxed)); }

void set_level(Level lvl) noexcept {
  level_storage().store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void write(Level lvl, const std::string& message) {
  // Monotonic seconds since process start and a dense thread index:
  // the same time axis and thread ids the trace recorder uses, so log
  // lines can be correlated with trace spans.
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[oocs:%s +%.6fs t%d] ", tag(lvl),
                obs::monotonic_seconds(), obs::thread_index());
  static std::mutex mu;
  const std::scoped_lock lock(mu);
  std::cerr << prefix << message << '\n';
}

}  // namespace oocs::log
