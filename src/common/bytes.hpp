// Byte-size formatting and parsing ("2GB", "1.5MiB", ...).
//
// Sizes throughout oocs follow the paper's convention: "GB"/"MB"/"KB"
// denote binary multiples (the 2 GB memory limit in the paper is 2^31
// bytes of double-precision buffers).
#pragma once

#include <cstdint>
#include <string>

namespace oocs {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

/// Format a byte count with a human-readable binary suffix, e.g.
/// format_bytes(3 * kGiB / 2) == "1.50 GB".
std::string format_bytes(double bytes);

/// Parse strings such as "2GB", "512 MB", "1024", "1.5GiB" into bytes.
/// Throws SpecError on malformed input.
std::int64_t parse_bytes(const std::string& text);

}  // namespace oocs
