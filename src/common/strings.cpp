#include "common/strings.hpp"

#include <cctype>

namespace oocs {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split_trimmed(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    const std::string_view piece =
        pos == std::string_view::npos ? text.substr(start) : text.substr(start, pos - start);
    const std::string_view trimmed = trim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  const auto head = static_cast<unsigned char>(name.front());
  if (!std::isalpha(head) && name.front() != '_') return false;
  for (const char c : name.substr(1)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::string indent(int depth) {
  return std::string(static_cast<std::size_t>(depth < 0 ? 0 : depth) * 2, ' ');
}

}  // namespace oocs
