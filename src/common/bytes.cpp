#include "common/bytes.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace oocs {

std::string format_bytes(double bytes) {
  const char* suffix = "B";
  double value = bytes;
  if (std::fabs(value) >= static_cast<double>(kGiB)) {
    value /= static_cast<double>(kGiB);
    suffix = "GB";
  } else if (std::fabs(value) >= static_cast<double>(kMiB)) {
    value /= static_cast<double>(kMiB);
    suffix = "MB";
  } else if (std::fabs(value) >= static_cast<double>(kKiB)) {
    value /= static_cast<double>(kKiB);
    suffix = "KB";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f %s", value, suffix);
  return buf;
}

std::int64_t parse_bytes(const std::string& text) {
  std::size_t pos = 0;
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  std::size_t end = pos;
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) || text[end] == '.' ||
          text[end] == '+' || text[end] == '-')) {
    ++end;
  }
  if (end == pos) throw SpecError("cannot parse byte size from '" + text + "'");
  double value = 0;
  try {
    value = std::stod(text.substr(pos, end - pos));
  } catch (const std::exception&) {
    throw SpecError("cannot parse byte size from '" + text + "'");
  }

  std::string unit;
  for (std::size_t i = end; i < text.size(); ++i) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    unit.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  double scale = 1;
  if (unit.empty() || unit == "b") {
    scale = 1;
  } else if (unit == "k" || unit == "kb" || unit == "kib") {
    scale = static_cast<double>(kKiB);
  } else if (unit == "m" || unit == "mb" || unit == "mib") {
    scale = static_cast<double>(kMiB);
  } else if (unit == "g" || unit == "gb" || unit == "gib") {
    scale = static_cast<double>(kGiB);
  } else {
    throw SpecError("unknown byte-size unit '" + unit + "' in '" + text + "'");
  }
  const double bytes = value * scale;
  if (bytes < 0) throw SpecError("negative byte size '" + text + "'");
  return static_cast<std::int64_t>(std::llround(bytes));
}

}  // namespace oocs
