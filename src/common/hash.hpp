// Deterministic structural hashing.
//
// One streaming FNV-1a 64-bit hasher shared by every component that
// needs a run-to-run-stable digest: ir::fingerprint (the serve-layer
// plan-cache key) and the tile cache's shard assignment.  Nothing here
// may depend on pointer values or any other per-process state — digests
// must be identical across processes, runs and ASLR layouts.
#pragma once

#include <cstdint>
#include <string_view>

namespace oocs {

/// Streaming FNV-1a over bytes with typed convenience feeds.  The
/// digest is a pure function of the fed byte sequence.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr Fnv1a() = default;
  constexpr explicit Fnv1a(std::uint64_t state) : state_(state) {}

  constexpr Fnv1a& feed_byte(std::uint8_t b) noexcept {
    state_ = (state_ ^ b) * kPrime;
    return *this;
  }

  constexpr Fnv1a& feed(std::string_view text) noexcept {
    for (const char c : text) feed_byte(static_cast<std::uint8_t>(c));
    // Length terminator: "ab" + "c" and "a" + "bc" must differ.
    return feed_byte(0);
  }

  constexpr Fnv1a& feed(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) feed_byte(static_cast<std::uint8_t>(value >> (8 * i)));
    return *this;
  }

  constexpr Fnv1a& feed(std::int64_t value) noexcept {
    return feed(static_cast<std::uint64_t>(value));
  }

  [[nodiscard]] constexpr std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = kOffset;
};

/// Mixes `value` into `seed` (boost::hash_combine shape, 64-bit).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) noexcept {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace oocs
