// Shared compute thread pool.
//
// The runtime's in-memory work (contraction kernels, buffer zeroing,
// read-modify-write merges) parallelizes over disjoint output blocks:
// no two tasks touch the same element, so no atomics are needed and the
// floating-point accumulation order per element is independent of both
// the thread count and the chunking.  The pool provides exactly that
// shape: a chunked `parallel_for` over an index range, executed by
// `num_threads - 1` background workers plus the calling thread.
//
// Rules:
//   * One parallel_for at a time per pool (concurrent callers are
//     serialized); nested use — parallel_for from inside a pool task —
//     is rejected with an Error, since the inner call would deadlock
//     waiting for workers that are themselves inside the outer batch.
//   * The first exception thrown by a task cancels the unissued chunks,
//     is captured, and is rethrown on the calling thread after every
//     in-flight chunk has drained; the pool remains usable.
//   * The destructor drains (parallel_for is synchronous, so no work
//     can be pending) and joins the workers.
//
// Thread-count resolution: `resolve_threads(0)` consults the
// OOCS_THREADS environment variable (CI runs the suite at 1 and 4) and
// falls back to 1; callers pass explicit positive requests through.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oocs {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the caller participates in every
  /// batch, so `num_threads == 1` runs everything inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// Runs `body(chunk_begin, chunk_end)` over a partition of
  /// [begin, end) into chunks of at least `min_chunk` indices, spread
  /// dynamically over the workers and the calling thread.  Blocks until
  /// every chunk has completed; rethrows the first task exception.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t min_chunk,
                    const std::function<void(std::int64_t, std::int64_t)>& body);

  /// Chunks executed over the pool's lifetime (telemetry).
  [[nodiscard]] std::int64_t tasks_executed() const;

  /// std::thread::hardware_concurrency(), never less than 1.
  [[nodiscard]] static int hardware_threads();
  /// `requested` if positive, else the OOCS_THREADS environment
  /// variable, else 1.
  [[nodiscard]] static int resolve_threads(int requested);

 private:
  struct Batch {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t chunk = 1;
    std::int64_t chunks = 0;     // total chunks in the partition
    std::int64_t next = 0;       // next chunk index to issue
    std::int64_t issued = 0;     // chunks handed to a thread
    std::int64_t completed = 0;  // chunks finished (success or error)
    const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
    std::exception_ptr error;
  };

  void worker_loop();
  /// Pulls and runs chunks of the active batch until none remain.
  /// Pre/post-condition: `lock` held on mutex_.
  void run_chunks(std::unique_lock<std::mutex>& lock);

  const int num_threads_;
  std::mutex caller_mutex_;  // serializes concurrent parallel_for callers

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: batch active / stop
  std::condition_variable done_cv_;  // caller: batch fully completed
  Batch batch_;
  bool batch_active_ = false;
  bool stop_ = false;
  std::int64_t tasks_executed_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace oocs
