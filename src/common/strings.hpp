// Small string utilities shared by the DSL parser and the printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace oocs {

/// Split `text` on `sep`, trimming ASCII whitespace from every piece and
/// dropping empty pieces.
std::vector<std::string> split_trimmed(std::string_view text, char sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Join `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `name` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool is_identifier(std::string_view name);

/// Repeat two-space indentation `depth` times.
std::string indent(int depth);

}  // namespace oocs
