// Deterministic pseudo-random number generation.
//
// All stochastic components (CSA solver, synthetic tensor data, property
// tests) draw from `Rng` so that every run is reproducible from a seed.
// The engine is SplitMix64: tiny state, excellent statistical quality for
// this use, and trivially portable.
#pragma once

#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace oocs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64 step).
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    OOCS_REQUIRE(lo <= hi, "uniform(", lo, ", ", hi, ")");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return next_double() < p; }

  /// Fork a statistically independent stream (for per-thread use).
  Rng split() noexcept { return Rng(next_u64() ^ 0xD1B54A32D192ED03ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace oocs
