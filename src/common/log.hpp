// Minimal leveled logger.
//
// The synthesis pipeline and the solvers emit progress at Info level and
// search diagnostics at Debug level; benches and tests tune the level via
// `set_level` or the OOCS_LOG_LEVEL environment variable
// (error|warn|info|debug; OOCS_LOG is accepted as an alias).  Each line
// carries monotonic seconds since process start and the obs thread
// index, matching the trace timeline.
#pragma once

#include <sstream>
#include <string>

namespace oocs::log {

enum class Level : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Current global log level (default Warn; overridden by env OOCS_LOG).
Level level() noexcept;
void set_level(Level lvl) noexcept;

/// Emit one line at `lvl` to stderr if enabled.  Thread-safe.
void write(Level lvl, const std::string& message);

namespace detail {
template <typename... Args>
void emit(Level lvl, const Args&... args) {
  if (lvl > level()) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}
}  // namespace detail

template <typename... Args>
void error(const Args&... args) { detail::emit(Level::Error, args...); }
template <typename... Args>
void warn(const Args&... args) { detail::emit(Level::Warn, args...); }
template <typename... Args>
void info(const Args&... args) { detail::emit(Level::Info, args...); }
template <typename... Args>
void debug(const Args&... args) { detail::emit(Level::Debug, args...); }

}  // namespace oocs::log
