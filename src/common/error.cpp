#include "common/error.hpp"

namespace oocs {

namespace {
std::string with_location(const std::string& message, const std::source_location& loc) {
  std::ostringstream os;
  os << message << " [" << loc.file_name() << ":" << loc.line() << "]";
  return os.str();
}
}  // namespace

Error::Error(std::string message, std::source_location loc)
    : std::runtime_error(with_location(message, loc)), loc_(loc) {}

namespace detail {

void throw_check_failure(const char* kind, const char* cond_text,
                         const std::string& message, std::source_location loc) {
  std::ostringstream os;
  os << kind << " failed: " << cond_text;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str(), loc);
}

}  // namespace detail
}  // namespace oocs
