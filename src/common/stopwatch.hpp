// Wall-clock stopwatch used by the code-generation-time benchmarks.
#pragma once

#include <chrono>

namespace oocs {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace oocs
