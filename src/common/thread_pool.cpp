#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace oocs {

namespace {
/// Set while this thread executes a pool task (any pool): nested
/// parallel_for would deadlock the pool it runs on, so it is rejected.
thread_local bool inside_pool_task = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  OOCS_REQUIRE(num_threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  // Workers belong to the creating proc's timeline: they inherit its
  // virtual proc id so their trace spans land on the right process row.
  const int proc = obs::current_proc();
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, proc, t] {
      obs::set_current_proc(proc);
      obs::set_thread_name("pool-worker-" + std::to_string(t));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end, std::int64_t min_chunk,
                              const std::function<void(std::int64_t, std::int64_t)>& body) {
  OOCS_REQUIRE(!inside_pool_task,
               "nested ThreadPool::parallel_for from inside a pool task");
  const std::int64_t extent = end - begin;
  if (extent <= 0) return;
  min_chunk = std::max<std::int64_t>(min_chunk, 1);

  // Inline when one chunk (or one thread) covers everything: no batch
  // machinery, but still guarded against nesting for uniform semantics.
  if (num_threads_ == 1 || extent <= min_chunk) {
    inside_pool_task = true;
    try {
      OOCS_SPAN("pool", "chunk");
      body(begin, end);
    } catch (...) {
      inside_pool_task = false;
      throw;
    }
    inside_pool_task = false;
    {
      const std::scoped_lock lock(mutex_);
      ++tasks_executed_;
    }
    return;
  }

  // A few chunks per thread keeps the dynamic schedule balanced without
  // shrinking chunks below the caller's floor.
  const std::int64_t target_chunks = static_cast<std::int64_t>(num_threads_) * 4;
  const std::int64_t chunk =
      std::max(min_chunk, (extent + target_chunks - 1) / target_chunks);

  const std::scoped_lock caller_lock(caller_mutex_);
  std::unique_lock lock(mutex_);
  batch_ = Batch{};
  batch_.begin = begin;
  batch_.end = end;
  batch_.chunk = chunk;
  batch_.chunks = (extent + chunk - 1) / chunk;
  batch_.body = &body;
  batch_active_ = true;
  work_cv_.notify_all();

  run_chunks(lock);  // the caller is worker 0
  done_cv_.wait(lock, [&] { return batch_.completed == batch_.issued; });
  batch_active_ = false;
  const std::exception_ptr error = batch_.error;
  batch_.body = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_chunks(std::unique_lock<std::mutex>& lock) {
  while (batch_.next < batch_.chunks) {
    const std::int64_t index = batch_.next++;
    ++batch_.issued;
    const std::int64_t lo = batch_.begin + index * batch_.chunk;
    const std::int64_t hi = std::min(lo + batch_.chunk, batch_.end);
    const auto* body = batch_.body;
    lock.unlock();

    std::exception_ptr error;
    inside_pool_task = true;
    try {
      OOCS_SPAN("pool", "chunk");
      (*body)(lo, hi);
    } catch (...) {
      error = std::current_exception();
    }
    inside_pool_task = false;

    lock.lock();
    ++tasks_executed_;
    ++batch_.completed;
    if (error) {
      if (!batch_.error) batch_.error = error;
      batch_.next = batch_.chunks;  // cancel unissued chunks
    }
    if (batch_.completed == batch_.issued) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || (batch_active_ && batch_.next < batch_.chunks);
    });
    if (stop_) return;
    run_chunks(lock);
  }
}

std::int64_t ThreadPool::tasks_executed() const {
  const std::scoped_lock lock(mutex_);
  return tasks_executed_;
}

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("OOCS_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 1;
}

}  // namespace oocs
