// Error handling for the oocs library.
//
// All recoverable failures are reported via `oocs::Error`, which carries a
// formatted message and the source location of the throw site.  The
// OOCS_CHECK / OOCS_REQUIRE macros express preconditions and internal
// invariants; per C++ Core Guidelines (P.7, E.2) we catch run-time errors
// early and signal them with exceptions rather than error codes.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace oocs {

/// Base exception for every error raised by the oocs library.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message,
                 std::source_location loc = std::source_location::current());

  /// Source location of the throw site (for diagnostics and tests).
  [[nodiscard]] const std::source_location& where() const noexcept { return loc_; }

 private:
  std::source_location loc_;
};

/// Raised when a user-supplied specification (DSL text, ranges, limits)
/// is malformed or inconsistent.
class SpecError : public Error {
 public:
  using Error::Error;
};

/// Raised when the optimization problem has no feasible solution
/// (e.g. the memory limit cannot hold even unit tiles).
class InfeasibleError : public Error {
 public:
  using Error::Error;
};

/// Raised on disk-backend failures (file creation, short reads, ...).
class IoError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* cond_text,
                                      const std::string& message,
                                      std::source_location loc);
}  // namespace detail

}  // namespace oocs

/// Internal invariant: failure indicates a bug in oocs itself.
#define OOCS_CHECK(cond, ...)                                                  \
  do {                                                                         \
    if (!(cond)) [[unlikely]] {                                                \
      ::oocs::detail::throw_check_failure(                                     \
          "internal check", #cond, ::oocs::detail_format_message(__VA_ARGS__), \
          ::std::source_location::current());                                  \
    }                                                                          \
  } while (false)

/// Precondition on caller-supplied data: failure is a usage error.
#define OOCS_REQUIRE(cond, ...)                                                \
  do {                                                                         \
    if (!(cond)) [[unlikely]] {                                                \
      ::oocs::detail::throw_check_failure(                                     \
          "precondition", #cond, ::oocs::detail_format_message(__VA_ARGS__),   \
          ::std::source_location::current());                                  \
    }                                                                          \
  } while (false)

namespace oocs {

/// Builds the optional message attached to a failing check.  Accepts any
/// streamable arguments; with no arguments produces an empty string.
template <typename... Args>
std::string detail_format_message(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

}  // namespace oocs
