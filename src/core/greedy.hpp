// Greedy I/O placement at a fixed tile-size point.
//
// The primitive shared by the uniform-sampling baseline (its inner
// loop) and the DCS-style synthesis (as a warm start for the nonlinear
// solver): every array starts at its cheapest-I/O usable candidate and
// the largest buffer is pushed to its next smaller-memory placement
// until the memory limit holds.
#pragma once

#include <optional>

#include "core/access.hpp"
#include "core/nlp.hpp"
#include "expr/compiled.hpp"

namespace oocs::core {

/// Slot-compiled option costs for fast repeated evaluation.  Tile-size
/// variables occupy slots [0, n) of `table` in `loop_indices` order.
class GreedyEvaluator {
 public:
  GreedyEvaluator(const ir::Program& program, const Enumeration& enumeration,
                  const SynthesisOptions& options);

  struct PointResult {
    bool feasible = false;
    double cost = 0;
    std::vector<int> choice;
  };

  /// Greedy placement at `point` (tile sizes, slot order =
  /// enumeration.loop_indices).  Scratch buffers make this allocation
  /// free after the first call.
  [[nodiscard]] PointResult place(std::span<const double> point);

  [[nodiscard]] int num_groups() const noexcept { return static_cast<int>(groups_.size()); }

 private:
  struct Option {
    expr::CompiledExpr cost;
    expr::CompiledExpr memory;
    expr::CompiledExpr block_slack;
  };
  double limit_;
  bool enforce_blocks_;
  std::vector<std::vector<Option>> groups_;
  std::vector<std::vector<double>> mem_of_;
  std::vector<std::vector<double>> cost_of_;
};

/// Best feasible greedy placement found by the warm-start sweep, with
/// its §4.2 objective value (I/O bytes plus the seek refinement) so the
/// solver's incumbent can be checked against it.
struct GreedyResult {
  Decisions decisions;
  double cost = 0;
};

/// Coarse greedy sweep over a thinned log-uniform tile grid (at most
/// `max_points` points); returns the best feasible decisions found, or
/// nullopt.  Used to warm-start the nonlinear solver.
[[nodiscard]] std::optional<GreedyResult> greedy_warm_start(
    const ir::Program& program, const Enumeration& enumeration,
    const SynthesisOptions& options, std::int64_t max_points = 400'000);

}  // namespace oocs::core
