#include "core/synthesize.hpp"

#include <sstream>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "core/greedy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/ampl.hpp"
#include "solver/dlm.hpp"

namespace oocs::core {

std::string SynthesisResult::decisions_to_text() const {
  std::ostringstream os;
  for (std::size_t g = 0; g < enumeration.groups.size(); ++g) {
    const ChoiceGroup& group = enumeration.groups[g];
    const ChoiceOption& option =
        group.options[static_cast<std::size_t>(decisions.option_index[g])];
    os << group.array << " (stmt#" << group.stmt_id << "): " << option.label << '\n';
  }
  return os.str();
}

SynthesisResult synthesize(const ir::Program& program, const SynthesisOptions& options,
                           solver::Solver& solver) {
  Stopwatch timer;
  OOCS_SPAN("synth", "synthesize");
  const trans::TiledProgram tiled(program);
  Enumeration enumeration = [&] {
    OOCS_SPAN("synth", "enumerate_placements");
    return enumerate_placements(tiled, options);
  }();
  int pruned = 0;
  if (options.prune_dominated) {
    OOCS_SPAN("synth", "prune_dominated");
    pruned = prune_dominated(program, enumeration, options);
  }
  NlpModel model = [&] {
    OOCS_SPAN("synth", "build_nlp");
    return build_nlp(program, enumeration, options);
  }();

  // Warm start: a coarse greedy sweep seeds the solver in a good basin;
  // the solver's incumbent can only improve on it.
  std::optional<double> greedy_cost;
  if (const auto warm = [&]() {
        OOCS_SPAN("synth", "greedy_warm_start");
        return greedy_warm_start(program, enumeration, options);
      }()) {
    greedy_cost = warm->cost;
    for (const auto& [index, tile] : warm->decisions.tile_sizes) {
      model.problem.set_initial(tile_var(index), tile);
    }
    for (std::size_t g = 0; g < model.group_lambdas.size(); ++g) {
      const int code = warm->decisions.option_index[g];
      const auto& lambdas = model.group_lambdas[g];
      for (std::size_t b = 0; b < lambdas.size(); ++b) {
        model.problem.set_initial(lambdas[b], (code >> b) & 1);
      }
    }
  }

  log::info("synthesize: ", model.problem.variables().size(), " variables, ",
            model.problem.constraints().size(), " constraints, ",
            enumeration.groups.size(), " placement groups (", pruned,
            " dominated options pruned)");
  {
    auto& m = obs::metrics();
    m.counter("synth.nlp_variables").add(static_cast<std::int64_t>(model.problem.variables().size()));
    m.counter("synth.nlp_constraints")
        .add(static_cast<std::int64_t>(model.problem.constraints().size()));
  }

  SynthesisResult result;
  result.ampl_model = solver::to_ampl(model.problem);
  {
    OOCS_SPAN("synth", "solve");
    result.solution = solver.solve(model.problem);
  }
  result.decisions = decode(model, enumeration, result.solution);
  {
    OOCS_SPAN("synth", "build_plan");
    result.plan = build_plan(tiled, enumeration, result.decisions);
  }

  result.predicted_disk_bytes = eval_at(model, result.solution, model.total_disk_bytes);
  result.memory_bytes = eval_at(model, result.solution, model.total_memory_bytes);
  result.predicted_io = predict_io(program, enumeration, result.decisions);
  result.predicted_io_calls = result.predicted_io.total_calls();

  result.enumeration = std::move(enumeration);
  result.codegen_seconds = timer.seconds();
  result.pruned_options = pruned;
  result.greedy_cost = greedy_cost;
  {
    auto& m = obs::metrics();
    m.counter("solver.evaluations").add(result.solution.stats.evaluations);
    m.counter("solver.delta_evaluations").add(result.solution.stats.delta_evaluations);
    m.counter("solver.full_evaluations").add(result.solution.stats.full_evaluations);
  }
  return result;
}

SynthesisResult synthesize(const ir::Program& program, const SynthesisOptions& options) {
  solver::DlmSolver solver;
  return synthesize(program, options, solver);
}

}  // namespace oocs::core
