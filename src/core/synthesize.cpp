#include "core/synthesize.hpp"

#include <sstream>

#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "core/greedy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/ampl.hpp"
#include "solver/compiled_problem.hpp"
#include "solver/dlm.hpp"

namespace oocs::core {

namespace {

/// True when `d` binds every tile variable and placement group of
/// `enumeration` (an injected warm start from a structurally equivalent
/// program; anything else is silently ignored).
bool covers_enumeration(const Decisions& d, const Enumeration& enumeration) {
  if (d.option_index.size() != enumeration.groups.size()) return false;
  for (std::size_t g = 0; g < enumeration.groups.size(); ++g) {
    const int code = d.option_index[g];
    if (code < 0 || code >= enumeration.groups[g].num_options()) return false;
  }
  for (const std::string& index : enumeration.loop_indices) {
    const auto it = d.tile_sizes.find(index);
    if (it == d.tile_sizes.end() || it->second < 1) return false;
  }
  return true;
}

/// Slot-ordered point for `d` on the compiled NLP (λ bits from the
/// group codes, LSB first — the same encoding decode() inverts).
std::vector<double> point_of(const solver::CompiledProblem& cp, const NlpModel& model,
                             const Enumeration& enumeration, const Decisions& d) {
  std::vector<double> x = cp.initial_point();
  for (const std::string& index : enumeration.loop_indices) {
    const int slot = cp.slot_of(tile_var(index));
    x[static_cast<std::size_t>(slot)] =
        cp.clamp(slot, static_cast<double>(d.tile_sizes.at(index)));
  }
  for (std::size_t g = 0; g < model.group_lambdas.size(); ++g) {
    const int code = d.option_index[g];
    const auto& lambdas = model.group_lambdas[g];
    for (std::size_t b = 0; b < lambdas.size(); ++b) {
      x[static_cast<std::size_t>(cp.slot_of(lambdas[b]))] =
          static_cast<double>((code >> b) & 1);
    }
  }
  return x;
}

}  // namespace

std::string SynthesisResult::decisions_to_text() const {
  std::ostringstream os;
  for (std::size_t g = 0; g < enumeration.groups.size(); ++g) {
    const ChoiceGroup& group = enumeration.groups[g];
    const ChoiceOption& option =
        group.options[static_cast<std::size_t>(decisions.option_index[g])];
    os << group.array << " (stmt#" << group.stmt_id << "): " << option.label << '\n';
  }
  return os.str();
}

SynthesisResult synthesize(const ir::Program& program, const SynthesisOptions& options,
                           solver::Solver& solver, const Decisions* warm_start) {
  Stopwatch timer;
  OOCS_SPAN("synth", "synthesize");
  const trans::TiledProgram tiled(program);
  Enumeration enumeration = [&] {
    OOCS_SPAN("synth", "enumerate_placements");
    return enumerate_placements(tiled, options);
  }();
  int pruned = 0;
  if (options.prune_dominated) {
    OOCS_SPAN("synth", "prune_dominated");
    pruned = prune_dominated(program, enumeration, options);
  }
  int bound_pruned = 0;
  if (options.prune_dominated && options.bound_prune) {
    OOCS_SPAN("synth", "bound_prune");
    bound_pruned = bound_prune_dominated(program, enumeration, options);
  }
  // Communication lower bound over the (pruned) candidate space —
  // pruning preserves the optimal achievable cost, so the Σ-of-group-
  // minima floor over the surviving options is still a valid floor for
  // anything the solver can return.
  const IoLowerBound bound = [&] {
    OOCS_SPAN("synth", "io_lower_bound");
    return io_lower_bound(program, enumeration, options);
  }();
  NlpModel model = [&] {
    OOCS_SPAN("synth", "build_nlp");
    return build_nlp(program, enumeration, options);
  }();
  if (options.bound_cutoff && bound.objective > 0) {
    model.problem.set_objective_cutoff(bound.objective * (1.0 + options.bound_eps));
  }

  // Warm start: a coarse greedy sweep seeds the solver in a good basin;
  // the solver's incumbent can only improve on it.
  std::optional<double> greedy_cost;
  const auto greedy = [&]() {
    OOCS_SPAN("synth", "greedy_warm_start");
    return greedy_warm_start(program, enumeration, options);
  }();
  if (greedy.has_value()) greedy_cost = greedy->cost;

  // Seed competition: the greedy point, the rounded continuous
  // relaxation, and any injected near-hit point are all evaluated on
  // the compiled NLP and the solver is seeded from the best (feasible
  // first, then objective) — a candidate can only improve the seed.
  const Decisions* seed = greedy.has_value() ? &greedy->decisions : nullptr;
  std::string seed_source = seed != nullptr ? "greedy" : "none";
  std::optional<double> warm_cost;
  bool warm_used = false;
  std::optional<double> relaxation_cost;
  std::optional<solver::RelaxationStats> relaxation_stats;
  Decisions relaxation_decisions;  // backing store while `seed` points at it

  const bool inject = warm_start != nullptr && covers_enumeration(*warm_start, enumeration);
  if (options.relaxation_warm_start || inject) {
    OOCS_SPAN("synth", "warm_start_eval");
    const solver::CompiledProblem cp(model.problem);

    // Exact §4.2 cost of the current (greedy) seed on the NLP.
    std::optional<double> seed_cost;
    if (seed != nullptr) {
      const std::vector<double> gx = point_of(cp, model, enumeration, *seed);
      if (cp.max_violation(gx) <= 1e-9) seed_cost = cp.objective(gx);
    }

    if (options.relaxation_warm_start) {
      OOCS_SPAN("synth", "relaxation_warm_start");
      const solver::AugLagSolver relax;
      solver::RelaxationStats rs;
      const std::vector<double> start =
          seed != nullptr ? point_of(cp, model, enumeration, *seed) : cp.initial_point();
      const solver::Solution rsol = relax.solve(cp, start, &rs);
      relaxation_stats = rs;
      if (rsol.feasible) {
        relaxation_cost = rsol.objective;
        if (!seed_cost.has_value() || rsol.objective < *seed_cost) {
          relaxation_decisions = decode(model, enumeration, rsol);
          seed = &relaxation_decisions;
          seed_source = "relaxation";
          seed_cost = rsol.objective;
        }
      }
    }

    if (inject) {
      const std::vector<double> wx = point_of(cp, model, enumeration, *warm_start);
      if (cp.max_violation(wx) <= 1e-9) {
        warm_cost = cp.objective(wx);
        if (!seed_cost.has_value() || *warm_cost < *seed_cost) {
          seed = warm_start;
          seed_source = "near_hit";
          warm_used = true;
          seed_cost = warm_cost;
        }
      }
    }
  }
  if (seed != nullptr) {
    for (const std::string& index : enumeration.loop_indices) {
      model.problem.set_initial(tile_var(index), seed->tile_sizes.at(index));
    }
    for (std::size_t g = 0; g < model.group_lambdas.size(); ++g) {
      const int code = seed->option_index[g];
      const auto& lambdas = model.group_lambdas[g];
      for (std::size_t b = 0; b < lambdas.size(); ++b) {
        model.problem.set_initial(lambdas[b], (code >> b) & 1);
      }
    }
  }

  log::info("synthesize: ", model.problem.variables().size(), " variables, ",
            model.problem.constraints().size(), " constraints, ",
            enumeration.groups.size(), " placement groups (", pruned,
            " dominated options pruned)");
  {
    auto& m = obs::metrics();
    m.counter("synth.nlp_variables").add(static_cast<std::int64_t>(model.problem.variables().size()));
    m.counter("synth.nlp_constraints")
        .add(static_cast<std::int64_t>(model.problem.constraints().size()));
  }

  SynthesisResult result;
  result.ampl_model = solver::to_ampl(model.problem);
  {
    OOCS_SPAN("synth", "solve");
    result.solution = solver.solve(model.problem);
  }
  result.decisions = decode(model, enumeration, result.solution);
  {
    OOCS_SPAN("synth", "build_plan");
    result.plan = build_plan(tiled, enumeration, result.decisions);
  }

  result.predicted_disk_bytes = eval_at(model, result.solution, model.total_disk_bytes);
  result.memory_bytes = eval_at(model, result.solution, model.total_memory_bytes);
  result.predicted_io = predict_io(program, enumeration, result.decisions);
  result.predicted_io_calls = result.predicted_io.total_calls();

  result.lower_bound = bound;
  result.io_lower_bound_bytes = bound.bytes;
  result.bound_efficiency = bound.efficiency(result.predicted_disk_bytes);

  result.enumeration = std::move(enumeration);
  result.codegen_seconds = timer.seconds();
  result.pruned_options = pruned;
  result.bound_pruned_options = bound_pruned;
  result.greedy_cost = greedy_cost;
  result.warm_cost = warm_cost;
  result.warm_start_used = warm_used;
  result.warm_start_source = seed != nullptr ? seed_source : "none";
  result.relaxation_cost = relaxation_cost;
  result.relaxation = relaxation_stats;
  {
    auto& m = obs::metrics();
    m.counter(std::string("synth.warm_start.") + result.warm_start_source).add(1);
    m.counter("solver.evaluations").add(result.solution.stats.evaluations);
    m.counter("solver.delta_evaluations").add(result.solution.stats.delta_evaluations);
    m.counter("solver.full_evaluations").add(result.solution.stats.full_evaluations);
    m.counter("solver.cutoff_hits").add(result.solution.stats.cutoff_hits);
    m.counter("solver.iterations_saved").add(result.solution.stats.iterations_saved);
    m.gauge("bound_efficiency").set(result.bound_efficiency);
  }
  return result;
}

SynthesisResult synthesize(const ir::Program& program, const SynthesisOptions& options) {
  solver::DlmSolver solver;
  return synthesize(program, options, solver);
}

}  // namespace oocs::core
