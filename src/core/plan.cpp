#include "core/plan.hpp"

#include <map>
#include <sstream>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace oocs::core {

namespace {

using ir::ArrayKind;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
using trans::TiledNode;
using trans::TiledProgram;

}  // namespace

PlanNode PlanNode::loop(std::string index) {
  PlanNode node;
  node.kind = Kind::Loop;
  node.index = std::move(index);
  return node;
}

PlanNode PlanNode::make_op(PlanOp op) {
  PlanNode node;
  node.kind = Kind::Op;
  node.op = std::move(op);
  return node;
}

std::int64_t PlanBuffer::elements(const Program& program,
                                  const std::map<std::string, std::int64_t>& tiles) const {
  std::int64_t count = 1;
  for (const BufferShape::Dim& dim : shape.dims) {
    count *= dim.tiled ? tiles.at(dim.index) : program.range(dim.index);
  }
  return count;
}

std::int64_t OocPlan::buffer_bytes() const {
  std::int64_t total = 0;
  for (const PlanBuffer& buffer : buffers) {
    total += buffer.elements(program, tile_sizes) * ir::kElementBytes;
  }
  return total;
}

std::int64_t OocPlan::tile(const std::string& index) const {
  const auto it = tile_sizes.find(index);
  if (it == tile_sizes.end()) throw SpecError("no tile size for index '" + index + "'");
  return it->second;
}

namespace {

/// Assembles the plan tree from the tiled tree plus decisions.
class PlanBuilder {
 public:
  PlanBuilder(const TiledProgram& tiled, const Enumeration& enumeration,
              const Decisions& decisions)
      : tiled_(tiled), program_(tiled.source()), enumeration_(enumeration),
        decisions_(decisions) {}

  OocPlan run() {
    wire_choices();
    OocPlan plan;
    plan.program = program_.clone();
    plan.tile_sizes = decisions_.tile_sizes;
    plan.buffers = buffers_;
    plan.roots = build_children(tiled_.roots());
    return plan;
  }

 private:
  struct ArrayState {
    bool on_disk = false;
    bool read_required = false;
    int write_buffer = -1;  // buffer for the producer side / in-memory buffer
  };

  int add_buffer(const std::string& array, const BufferShape& shape, const std::string& tag) {
    buffers_.push_back(PlanBuffer{array + "#" + tag, array, shape});
    return static_cast<int>(buffers_.size()) - 1;
  }

  /// Registers buffers, per-site buffer bindings and I/O attachments for
  /// every group's chosen option.
  void wire_choices() {
    for (std::size_t g = 0; g < enumeration_.groups.size(); ++g) {
      const ChoiceGroup& group = enumeration_.groups[g];
      const ChoiceOption& option =
          group.options[static_cast<std::size_t>(decisions_.option_index[g])];
      const std::string tag = "g" + std::to_string(g);

      switch (group.kind) {
        case ArrayKind::Input: {
          const IoCandidate& read = option.reads.front();
          const int buf = add_buffer(group.array, read.buffer, tag);
          site_buffer_[{group.array, read.stmt_id}] = buf;
          attach_read(read, buf);
          break;
        }
        case ArrayKind::Output: {
          const IoCandidate& write = *option.write;
          const int buf = add_buffer(group.array, write.buffer, tag);
          site_buffer_[{group.array, write.stmt_id}] = buf;
          ArrayState state;
          state.on_disk = true;
          state.read_required = write.read_required;
          state.write_buffer = buf;
          array_state_[group.array] = state;
          attach_write(write, buf);
          break;
        }
        case ArrayKind::Intermediate: {
          ArrayState state;
          if (option.in_memory) {
            const int buf = add_buffer(group.array, option.in_memory_shape, tag);
            state.on_disk = false;
            state.write_buffer = buf;
            default_buffer_[group.array] = buf;
          } else {
            const IoCandidate& write = *option.write;
            const int wbuf = add_buffer(group.array, write.buffer, tag + "w");
            site_buffer_[{group.array, write.stmt_id}] = wbuf;
            state.on_disk = true;
            state.read_required = write.read_required;
            state.write_buffer = wbuf;
            attach_write(write, wbuf);
            for (const IoCandidate& read : option.reads) {
              const int rbuf =
                  add_buffer(group.array, read.buffer, tag + "r" + std::to_string(read.stmt_id));
              site_buffer_[{group.array, read.stmt_id}] = rbuf;
              attach_read(read, rbuf);
            }
          }
          array_state_[group.array] = state;
          break;
        }
      }
    }
  }

  /// Attachment helpers: the op is inserted immediately before (reads)
  /// or after (writes) the subtree rooted at the stmt-path loop at the
  /// candidate's position.
  void attach_read(const IoCandidate& cand, int buffer) {
    const TiledNode* anchor = anchor_node(cand);
    PlanOp op;
    op.kind = PlanOp::Kind::ReadDisk;
    op.buffer = buffer;
    pre_[anchor].push_back(op);
  }

  void attach_write(const IoCandidate& cand, int buffer) {
    const TiledNode* anchor = anchor_node(cand);
    PlanOp post;
    post.kind = PlanOp::Kind::WriteDisk;
    post.buffer = buffer;
    post.rmw = cand.read_required;
    post_[anchor].push_back(post);

    PlanOp pre;
    pre.buffer = buffer;
    if (cand.read_required) {
      pre.kind = PlanOp::Kind::ReadDisk;  // read-modify-write accumulation
      pre.rmw = true;
    } else {
      pre.kind = PlanOp::Kind::ZeroBuffer;  // fresh accumulation block
    }
    pre_[anchor].push_back(pre);
  }

  const TiledNode* anchor_node(const IoCandidate& cand) const {
    const auto& loops = tiled_.stmt_info(cand.stmt_id).loops;
    OOCS_CHECK(cand.position >= 0 && cand.position < static_cast<int>(loops.size()),
               "bad candidate position");
    return loops[static_cast<std::size_t>(cand.position)];
  }

  // -- Tree construction -----------------------------------------------

  /// Statement count and single-statement pointer for a subtree.
  static void subtree_stmts(const TiledNode& node, int& count, const Stmt** single) {
    if (node.kind == TiledNode::Kind::Stmt) {
      ++count;
      *single = &node.stmt;
      return;
    }
    for (const auto& child : node.children) subtree_stmts(*child, count, single);
  }

  std::vector<PlanNode> build_children(const std::vector<std::unique_ptr<TiledNode>>& list) {
    std::vector<PlanNode> out;
    for (const auto& child : list) {
      // Init-only subtrees are replaced according to the target array's
      // residence (see build_init).
      int count = 0;
      const Stmt* single = nullptr;
      subtree_stmts(*child, count, &single);
      if (count == 1 && single->kind == StmtKind::Init) {
        build_init(*single, out);
        continue;
      }
      emit_ops(pre_, child.get(), out);
      if (child->kind == TiledNode::Kind::TilingLoop) {
        PlanNode loop = PlanNode::loop(child->index);
        loop.children = build_children(child->children);
        out.push_back(std::move(loop));
      } else if (child->kind == TiledNode::Kind::IntraLoop) {
        // Collapse the intra nest into its leaf contraction.
        const TiledNode* cur = child.get();
        std::vector<std::string> intra;
        while (cur->kind != TiledNode::Kind::Stmt) {
          OOCS_CHECK(cur->children.size() == 1, "intra nest must be a chain");
          intra.push_back(cur->index);
          cur = cur->children.front().get();
        }
        out.push_back(PlanNode::make_op(contract_op(cur->stmt, intra)));
      } else {
        out.push_back(PlanNode::make_op(contract_op(child->stmt, {})));
      }
      emit_ops(post_, child.get(), out);
    }
    return out;
  }

  /// Emits the replacement for an init-only subtree.
  void build_init(const Stmt& stmt, std::vector<PlanNode>& out) {
    const std::string& array = stmt.target.array;
    const auto it = array_state_.find(array);
    OOCS_CHECK(it != array_state_.end(), "no placement state for ", array);
    const ArrayState& state = it->second;

    if (!state.on_disk) {
      // In-memory: zero the buffer region covered by the active tiles.
      PlanOp op;
      op.kind = PlanOp::Kind::ZeroBuffer;
      op.buffer = state.write_buffer;
      out.push_back(PlanNode::make_op(op));
      return;
    }
    if (!state.read_required) return;  // zeroed lazily at the write anchor

    // Disk + accumulation: materialize zeros on disk before the main
    // computation (the "FOR mT,nT {B=0; Write}" pass of Fig. 4b).
    PlanOp zero;
    zero.kind = PlanOp::Kind::ZeroBuffer;
    zero.buffer = state.write_buffer;
    out.push_back(PlanNode::make_op(zero));

    PlanOp write;
    write.kind = PlanOp::Kind::WriteDisk;
    write.buffer = state.write_buffer;
    PlanNode body = PlanNode::make_op(write);
    const PlanBuffer& buffer = buffers_[static_cast<std::size_t>(state.write_buffer)];
    for (auto dim = buffer.shape.dims.rbegin(); dim != buffer.shape.dims.rend(); ++dim) {
      if (!dim->tiled) continue;
      PlanNode loop = PlanNode::loop(dim->index);
      loop.children.push_back(std::move(body));
      body = std::move(loop);
    }
    out.push_back(std::move(body));
  }

  PlanOp contract_op(const Stmt& stmt, std::vector<std::string> intra) {
    PlanOp op;
    if (stmt.kind == StmtKind::Init) {
      // A lone init statement whose subtree also holds other statements
      // cannot occur (init-only subtrees were intercepted above), but an
      // init leaf inside a fused nest lands here: zero the region.
      op.kind = PlanOp::Kind::ZeroBuffer;
      op.buffer = buffer_for(stmt.target.array, stmt.id);
      return op;
    }
    op.kind = PlanOp::Kind::Contract;
    op.stmt = stmt;
    op.loops = std::move(intra);
    op.target_buffer = buffer_for(stmt.target.array, stmt.id);
    op.lhs_buffer = buffer_for(stmt.lhs->array, stmt.id);
    if (stmt.rhs.has_value()) op.rhs_buffer = buffer_for(stmt.rhs->array, stmt.id);
    return op;
  }

  int buffer_for(const std::string& array, int stmt_id) const {
    const auto site = site_buffer_.find({array, stmt_id});
    if (site != site_buffer_.end()) return site->second;
    const auto fallback = default_buffer_.find(array);
    OOCS_CHECK(fallback != default_buffer_.end(), "no buffer for ", array, " at stmt ",
               stmt_id);
    return fallback->second;
  }

  void emit_ops(const std::map<const TiledNode*, std::vector<PlanOp>>& table,
                const TiledNode* key, std::vector<PlanNode>& out) {
    const auto it = table.find(key);
    if (it == table.end()) return;
    for (const PlanOp& op : it->second) out.push_back(PlanNode::make_op(op));
  }

  const TiledProgram& tiled_;
  const Program& program_;
  const Enumeration& enumeration_;
  const Decisions& decisions_;

  std::vector<PlanBuffer> buffers_;
  std::map<std::pair<std::string, int>, int> site_buffer_;
  std::map<std::string, int> default_buffer_;
  std::map<std::string, ArrayState> array_state_;
  std::map<const TiledNode*, std::vector<PlanOp>> pre_;
  std::map<const TiledNode*, std::vector<PlanOp>> post_;
};

}  // namespace

OocPlan build_plan(const TiledProgram& tiled, const Enumeration& enumeration,
                   const Decisions& decisions) {
  OOCS_REQUIRE(decisions.option_index.size() == enumeration.groups.size(),
               "decisions do not match the enumeration");
  return PlanBuilder(tiled, enumeration, decisions).run();
}

namespace {

void print_node(const OocPlan& plan, const PlanNode& node, int depth, std::ostream& os) {
  if (node.kind == PlanNode::Kind::Loop) {
    os << indent(depth) << "FOR " << node.index << "T  # step " << plan.tile(node.index)
       << " of " << plan.program.range(node.index) << '\n';
    for (const PlanNode& child : node.children) print_node(plan, child, depth + 1, os);
    return;
  }
  const PlanOp& op = node.op;
  switch (op.kind) {
    case PlanOp::Kind::ReadDisk: {
      const PlanBuffer& buf = plan.buffers[static_cast<std::size_t>(op.buffer)];
      os << indent(depth) << buf.name << " = Read " << buf.array << "Disk  # "
         << buf.shape.to_string() << '\n';
      return;
    }
    case PlanOp::Kind::WriteDisk: {
      const PlanBuffer& buf = plan.buffers[static_cast<std::size_t>(op.buffer)];
      os << indent(depth) << "Write " << buf.array << "Disk from " << buf.name << "  # "
         << buf.shape.to_string() << '\n';
      return;
    }
    case PlanOp::Kind::ZeroBuffer: {
      const PlanBuffer& buf = plan.buffers[static_cast<std::size_t>(op.buffer)];
      os << indent(depth) << buf.name << " = 0\n";
      return;
    }
    case PlanOp::Kind::Contract: {
      std::vector<std::string> intra;
      intra.reserve(op.loops.size());
      for (const std::string& index : op.loops) intra.push_back(index + "I");
      os << indent(depth) << "FOR " << join(intra, ", ") << ": " << op.stmt.to_string()
         << '\n';
      return;
    }
  }
}

}  // namespace

std::string to_text(const OocPlan& plan) {
  std::ostringstream os;
  os << "# tile sizes:";
  for (const auto& [index, tile] : plan.tile_sizes) os << " T_" << index << "=" << tile;
  os << "\n# buffers (" << format_bytes(static_cast<double>(plan.buffer_bytes())) << " total):";
  for (const PlanBuffer& buf : plan.buffers) os << " " << buf.name << "[" << buf.shape.to_string() << "]";
  os << "\n";
  for (const PlanNode& root : plan.roots) print_node(plan, root, 0, os);
  return os.str();
}

}  // namespace oocs::core
