// Analytical I/O prediction for a decided synthesis outcome.
//
// Evaluates the §4.2 cost expressions of the *chosen* placements at the
// chosen tile sizes, split by direction, so benches can turn volume and
// call counts into predicted disk seconds under a DiskModel — the
// "Predicted time" columns of the paper's Table 3.
#pragma once

#include "core/access.hpp"
#include "core/nlp.hpp"

namespace oocs::core {

struct PredictedIo {
  double read_bytes = 0;
  double write_bytes = 0;
  double read_calls = 0;
  double write_calls = 0;

  [[nodiscard]] double total_bytes() const noexcept { return read_bytes + write_bytes; }
  [[nodiscard]] double total_calls() const noexcept { return read_calls + write_calls; }

  /// Predicted disk seconds: seek per call plus transfer at the model's
  /// per-direction bandwidths (divided by `procs` local disks for the
  /// collective parallel model).
  [[nodiscard]] double seconds(double seek_seconds, double read_bw, double write_bw,
                               int procs = 1) const;

  /// Non-overlapped end-to-end prediction: disk time plus compute time.
  [[nodiscard]] double serial_seconds(double seek_seconds, double read_bw, double write_bw,
                                      double compute_seconds, int procs = 1) const;

  /// Overlapped end-to-end prediction for a double-buffered runtime
  /// (async prefetch / write-behind): whichever of disk and compute
  /// dominates.  This is the aggregate bound; the executed model
  /// (rt::ExecStats::modeled_overlap_seconds) refines it per stage.
  [[nodiscard]] double overlapped_seconds(double seek_seconds, double read_bw, double write_bw,
                                          double compute_seconds, int procs = 1) const;
};

/// Evaluates the chosen options of `decisions` over `enumeration`.
[[nodiscard]] PredictedIo predict_io(const ir::Program& program,
                                     const Enumeration& enumeration,
                                     const Decisions& decisions);

/// Analytical flop count of the abstract program: 2 flops per point of
/// every update statement's full index space (init statements are
/// free).  Placement/tiling do not change it — compute volume is
/// invariant under the synthesis, only I/O volume moves.
[[nodiscard]] double predict_flops(const ir::Program& program);

}  // namespace oocs::core
