// Analytical I/O prediction for a decided synthesis outcome.
//
// Evaluates the §4.2 cost expressions of the *chosen* placements at the
// chosen tile sizes, split by direction, so benches can turn volume and
// call counts into predicted disk seconds under a DiskModel — the
// "Predicted time" columns of the paper's Table 3.
#pragma once

#include "core/access.hpp"
#include "core/nlp.hpp"

namespace oocs::core {

struct PredictedIo {
  double read_bytes = 0;
  double write_bytes = 0;
  double read_calls = 0;
  double write_calls = 0;

  [[nodiscard]] double total_bytes() const noexcept { return read_bytes + write_bytes; }
  [[nodiscard]] double total_calls() const noexcept { return read_calls + write_calls; }

  /// Predicted disk seconds: seek per call plus transfer at the model's
  /// per-direction bandwidths (divided by `procs` local disks for the
  /// collective parallel model).
  [[nodiscard]] double seconds(double seek_seconds, double read_bw, double write_bw,
                               int procs = 1) const;

  /// Non-overlapped end-to-end prediction: disk time plus compute time.
  [[nodiscard]] double serial_seconds(double seek_seconds, double read_bw, double write_bw,
                                      double compute_seconds, int procs = 1) const;

  /// Overlapped end-to-end prediction for a double-buffered runtime
  /// (async prefetch / write-behind): whichever of disk and compute
  /// dominates.  This is the aggregate bound; the executed model
  /// (rt::ExecStats::modeled_overlap_seconds) refines it per stage.
  [[nodiscard]] double overlapped_seconds(double seek_seconds, double read_bw, double write_bw,
                                          double compute_seconds, int procs = 1) const;
};

/// Evaluates the chosen options of `decisions` over `enumeration`.
[[nodiscard]] PredictedIo predict_io(const ir::Program& program,
                                     const Enumeration& enumeration,
                                     const Decisions& decisions);

/// Cache-aware refinement of predict_io for a runtime tile cache of
/// `budget_bytes` (rt's --cache-mb): the memory the λ-selected buffers
/// leave unused can hold the distinct tiles a redundant loop re-reads.
///
/// The model mirrors the runtime LRU exactly: a placement whose
/// redundant loops repeat a distinct tile set of `footprint_bytes`
/// gets full hits on every repeat iff the whole set fits in the budget
/// share it is allocated, and zero hits otherwise (a cyclic re-read
/// pattern one tile over budget thrashes LRU completely).  The budget
/// is allocated greedily to the smallest footprints first.  Writes
/// under a redundant loop (read_required accumulation) additionally
/// save their re-reads and coalesce their repeated write-backs into
/// the final flush.  A second, producer→consumer term covers
/// intermediates: flushed entries stay resident clean, so a consumer
/// whose evaluated sections coincide with the producer's hits on its
/// first pass too when the array fits — this is where the cache wins
/// on DCS-optimal plans, whose within-nest redundancy the solver has
/// already minimized.
///
/// The result is a *lower bound* on the measured savings: it only sees
/// reuse expressible at the enumeration's buffer shapes, while the
/// executed plan can also hit when its concrete section granularity
/// happens to line up across stages.  For an exact cache-aware
/// prediction, dry-run the plan against a sim farm with a TileCache
/// attached (see bench/tile_cache.cpp).
struct CachePrediction {
  std::int64_t budget_bytes = 0;
  /// Disk traffic with the cache active (predict_io minus the savings).
  PredictedIo with_cache;
  /// Read traffic served from the cache instead of disk.
  double hit_bytes = 0;
  double hits = 0;
  /// Repeated write-back traffic coalesced away.
  double saved_write_bytes = 0;
  double saved_write_calls = 0;
  /// Fraction of predict_io read calls served from the cache.
  double expected_hit_rate = 0;
};

[[nodiscard]] CachePrediction predict_cache(const ir::Program& program,
                                            const Enumeration& enumeration,
                                            const Decisions& decisions,
                                            std::int64_t budget_bytes);

/// Analytical flop count of the abstract program: 2 flops per point of
/// every update statement's full index space (init statements are
/// free).  Placement/tiling do not change it — compute volume is
/// invariant under the synthesis, only I/O volume moves.
[[nodiscard]] double predict_flops(const ir::Program& program);

}  // namespace oocs::core
