// Analytical I/O prediction for a decided synthesis outcome.
//
// Evaluates the §4.2 cost expressions of the *chosen* placements at the
// chosen tile sizes, split by direction, so benches can turn volume and
// call counts into predicted disk seconds under a DiskModel — the
// "Predicted time" columns of the paper's Table 3.
#pragma once

#include "core/access.hpp"
#include "core/nlp.hpp"

namespace oocs::core {

struct PredictedIo {
  double read_bytes = 0;
  double write_bytes = 0;
  double read_calls = 0;
  double write_calls = 0;

  [[nodiscard]] double total_bytes() const noexcept { return read_bytes + write_bytes; }
  [[nodiscard]] double total_calls() const noexcept { return read_calls + write_calls; }

  /// Predicted disk seconds: seek per call plus transfer at the model's
  /// per-direction bandwidths (divided by `procs` local disks for the
  /// collective parallel model).
  [[nodiscard]] double seconds(double seek_seconds, double read_bw, double write_bw,
                               int procs = 1) const;
};

/// Evaluates the chosen options of `decisions` over `enumeration`.
[[nodiscard]] PredictedIo predict_io(const ir::Program& program,
                                     const Enumeration& enumeration,
                                     const Decisions& decisions);

}  // namespace oocs::core
