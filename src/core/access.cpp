#include "core/access.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace oocs::core {

namespace {

using expr::Expr;
using ir::ArrayDecl;
using ir::ArrayKind;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
using trans::TiledNode;
using trans::TiledProgram;

Expr range_const(const Program& program, const std::string& index) {
  return expr::lit(static_cast<double>(program.range(index)));
}

/// Trip count of the tiling loop of `index`: ceil(N / T).
Expr trips(const Program& program, const std::string& index) {
  return Expr::ceil_div(range_const(program, index), expr::var(tile_var(index)));
}

Expr size_const(const Program& program, const std::string& array) {
  return expr::lit(program.byte_size(array));
}

}  // namespace

std::string tile_var(const std::string& index) { return "T_" + index; }

Expr BufferShape::bytes(const Program& program) const {
  std::vector<Expr> factors{expr::lit(static_cast<double>(ir::kElementBytes))};
  for (const Dim& dim : dims) {
    factors.push_back(dim.tiled ? expr::var(tile_var(dim.index))
                                : range_const(program, dim.index));
  }
  return Expr::mul(std::move(factors));
}

double BufferShape::min_bytes(const Program& program) const {
  double bytes = static_cast<double>(ir::kElementBytes);
  for (const Dim& dim : dims) {
    if (!dim.tiled) bytes *= static_cast<double>(program.range(dim.index));
  }
  return bytes;
}

std::string BufferShape::to_string() const {
  if (dims.empty()) return "scalar";
  std::vector<std::string> parts;
  parts.reserve(dims.size());
  for (const Dim& dim : dims) {
    parts.push_back((dim.tiled ? "T" : "N") + std::string("_") + dim.index);
  }
  return join(parts, " x ");
}

Expr IoCandidate::disk_bytes(const Program& program, const std::string& array) const {
  Expr base = size_const(program, array);
  for (const std::string& index : redundant) base = base * trips(program, index);
  if (!read_required) return base;
  // Read-modify-write: the block is read back before every accumulation
  // pass and the disk array is zero-initialized once up front.
  return expr::lit(2) * base + size_const(program, array);
}

Expr IoCandidate::call_count(const Program& program) const {
  Expr count = expr::lit(1);
  for (const std::string& index : loops_above) count = count * trips(program, index);
  return count;
}

namespace {

/// Walks one statement path bottom-up producing the legal candidates
/// for one array access (the core of §4.1).
class CandidateWalk {
 public:
  CandidateWalk(const TiledProgram& tiled, const SynthesisOptions& options)
      : tiled_(tiled), options_(options) {}

  /// `min_position`: lowest legal depth (0 for inputs/outputs; the LCA
  /// prefix length for intermediates).
  std::vector<IoCandidate> run(int stmt_id, const ArrayDecl& decl, bool is_write,
                               int min_position) const {
    const auto& info = tiled_.stmt_info(stmt_id);
    const auto& loops = info.loops;

    int first_intra = static_cast<int>(loops.size());
    for (int d = 0; d < static_cast<int>(loops.size()); ++d) {
      if (loops[static_cast<std::size_t>(d)]->kind == TiledNode::Kind::IntraLoop) {
        first_intra = d;
        break;
      }
    }

    // Depth of each dimension's tiling loop on this path.
    std::map<std::string, int> tiling_depth;
    for (int d = 0; d < first_intra; ++d) {
      tiling_depth[loops[static_cast<std::size_t>(d)]->index] = d;
    }
    for (const std::string& dim : decl.indices) {
      OOCS_CHECK(tiling_depth.count(dim) != 0, "dimension '", dim,
                 "' of ", decl.name, " unbound at stmt ", stmt_id);
    }

    const auto indexes_array = [&](const std::string& index) {
      return std::find(decl.indices.begin(), decl.indices.end(), index) != decl.indices.end();
    };

    std::vector<IoCandidate> out;
    for (int k = first_intra; k >= std::max(min_position, 0); --k) {
      IoCandidate cand;
      cand.stmt_id = stmt_id;
      cand.position = k;
      cand.label = k < static_cast<int>(loops.size())
                       ? loops[static_cast<std::size_t>(k)]->display_name()
                       : "leaf";

      for (const std::string& dim : decl.indices) {
        cand.buffer.dims.push_back({dim, tiling_depth.at(dim) < k});
      }
      // Feasibility pruning: once even unit tiles no longer fit, no
      // higher position can fit either.
      if (cand.buffer.min_bytes(tiled_.source()) >
          static_cast<double>(options_.memory_limit_bytes)) {
        break;
      }
      // Skip positions immediately inside a redundant loop.
      if (k > 0) {
        const TiledNode& parent = *loops[static_cast<std::size_t>(k - 1)];
        if (!indexes_array(parent.index)) continue;
      }
      for (int d = 0; d < k && d < first_intra; ++d) {
        const std::string& index = loops[static_cast<std::size_t>(d)]->index;
        cand.loops_above.push_back(index);
        if (!indexes_array(index)) cand.redundant.push_back(index);
      }
      cand.read_required = is_write && !cand.redundant.empty();
      out.push_back(std::move(cand));
    }
    return out;
  }

  /// Loop indices above position `k` on the path of `stmt_id`.
  std::vector<std::string> loops_above(int stmt_id, int k) const {
    const auto& loops = tiled_.stmt_info(stmt_id).loops;
    std::vector<std::string> out;
    for (int d = 0; d < k; ++d) {
      if (loops[static_cast<std::size_t>(d)]->kind == TiledNode::Kind::TilingLoop) {
        out.push_back(loops[static_cast<std::size_t>(d)]->index);
      }
    }
    return out;
  }

 private:
  const TiledProgram& tiled_;
  const SynthesisOptions& options_;
};

/// Per-array access sites discovered in the program.
struct Sites {
  std::vector<int> init_stmts;
  std::vector<int> producer_stmts;  // Update statements targeting the array
  std::vector<int> consumer_stmts;  // statements reading the array
};

std::map<std::string, Sites> collect_sites(const Program& program) {
  std::map<std::string, Sites> sites;
  program.for_each_stmt([&](const Stmt& stmt) {
    if (stmt.kind == StmtKind::Init) {
      sites[stmt.target.array].init_stmts.push_back(stmt.id);
    } else {
      sites[stmt.target.array].producer_stmts.push_back(stmt.id);
      for (const auto* read : stmt.reads()) sites[read->array].consumer_stmts.push_back(stmt.id);
    }
  });
  return sites;
}

/// Length of the common loop-node prefix of the given statements' paths.
int common_prefix_length(const TiledProgram& tiled, const std::vector<int>& stmt_ids) {
  OOCS_CHECK(!stmt_ids.empty(), "no statements for LCA");
  const auto& first = tiled.stmt_info(stmt_ids.front()).loops;
  std::size_t prefix = first.size();
  for (const int id : stmt_ids) {
    const auto& loops = tiled.stmt_info(id).loops;
    std::size_t k = 0;
    while (k < prefix && k < loops.size() && loops[k] == first[k]) ++k;
    prefix = k;
  }
  return static_cast<int>(prefix);
}

}  // namespace

Enumeration enumerate_placements(const TiledProgram& tiled, const SynthesisOptions& options) {
  const Program& program = tiled.source();
  const CandidateWalk walk(tiled, options);
  const auto sites = collect_sites(program);

  Enumeration out;

  // Loop indices present in the tiled tree (deterministic order).
  {
    std::set<std::string> seen;
    for (int id = 0; id < tiled.num_stmts(); ++id) {
      for (const TiledNode* loop : tiled.stmt_info(id).loops) {
        if (loop->kind == TiledNode::Kind::TilingLoop && seen.insert(loop->index).second) {
          out.loop_indices.push_back(loop->index);
        }
      }
    }
  }

  for (const auto& [name, decl] : program.arrays()) {
    const auto sites_it = sites.find(name);
    if (sites_it == sites.end()) continue;  // declared but unused
    const Sites& site = sites_it->second;

    switch (decl.kind) {
      case ArrayKind::Input: {
        // One group per consumption site.
        for (const int stmt_id : site.consumer_stmts) {
          ChoiceGroup group;
          group.array = name;
          group.kind = decl.kind;
          group.stmt_id = stmt_id;
          for (IoCandidate& cand : walk.run(stmt_id, decl, /*is_write=*/false, 0)) {
            ChoiceOption option;
            option.label = "read above " + cand.label;
            option.disk_cost = cand.disk_bytes(program, name);
            option.memory_cost = cand.buffer.bytes(program);
            option.reads.push_back(std::move(cand));
            group.options.push_back(std::move(option));
          }
          if (group.options.empty()) {
            throw InfeasibleError("no feasible read placement for input '" + name +
                                  "' under the memory limit");
          }
          out.groups.push_back(std::move(group));
        }
        break;
      }
      case ArrayKind::Output: {
        if (site.producer_stmts.size() != 1) {
          throw SpecError("output '" + name + "' must be produced by exactly one statement");
        }
        const int stmt_id = site.producer_stmts.front();
        ChoiceGroup group;
        group.array = name;
        group.kind = decl.kind;
        group.stmt_id = stmt_id;
        for (IoCandidate& cand : walk.run(stmt_id, decl, /*is_write=*/true, 0)) {
          ChoiceOption option;
          option.label = "write above " + cand.label +
                         (cand.read_required ? " (read required)" : "");
          option.disk_cost = cand.disk_bytes(program, name);
          option.memory_cost = cand.buffer.bytes(program);
          option.write = std::move(cand);
          group.options.push_back(std::move(option));
        }
        if (group.options.empty()) {
          throw InfeasibleError("no feasible write placement for output '" + name +
                                "' under the memory limit");
        }
        out.groups.push_back(std::move(group));
        break;
      }
      case ArrayKind::Intermediate: {
        if (site.producer_stmts.size() != 1) {
          throw SpecError("intermediate '" + name + "' must be produced by exactly one statement");
        }
        const int producer = site.producer_stmts.front();
        ChoiceGroup group;
        group.array = name;
        group.kind = decl.kind;
        group.stmt_id = producer;

        // LCA across producer, every consumer, and the init statements.
        std::vector<int> all_sites = site.producer_stmts;
        all_sites.insert(all_sites.end(), site.consumer_stmts.begin(),
                         site.consumer_stmts.end());
        all_sites.insert(all_sites.end(), site.init_stmts.begin(), site.init_stmts.end());
        const int prefix = common_prefix_length(tiled, all_sites);

        // Shared-prefix tiling loops (ancestors of every access).
        std::vector<std::string> prefix_loops;
        {
          const auto& shared = tiled.stmt_info(producer).loops;
          for (int d = 0; d < prefix; ++d) {
            if (shared[static_cast<std::size_t>(d)]->kind == TiledNode::Kind::TilingLoop) {
              prefix_loops.push_back(shared[static_cast<std::size_t>(d)]->index);
            }
          }
        }
        const auto in_prefix = [&](const std::string& index) {
          return std::find(prefix_loops.begin(), prefix_loops.end(), index) !=
                 prefix_loops.end();
        };
        // "Virtual" dimensions: prefix loops not indexing the array.
        // After tiling, the producer's intra-tile nest completes before
        // the consumer's, so one value per intra point of every prefix
        // loop is live simultaneously — the buffer gains a tile-sized
        // dimension per prefix loop (the paper's Fig. 4b re-expands its
        // fused-away T the same way).
        const bool has_virtual_dims = std::any_of(
            prefix_loops.begin(), prefix_loops.end(), [&](const std::string& x) {
              return std::find(decl.indices.begin(), decl.indices.end(), x) ==
                     decl.indices.end();
            });

        // Option 0: keep the intermediate in memory.
        {
          ChoiceOption option;
          option.in_memory = true;
          option.label = "in memory";
          option.disk_cost = expr::lit(0);
          BufferShape shape;
          for (const std::string& x : prefix_loops) shape.dims.push_back({x, true});
          for (const std::string& dim : decl.indices) {
            if (!in_prefix(dim)) shape.dims.push_back({dim, false});
          }
          if (shape.min_bytes(program) <= static_cast<double>(options.memory_limit_bytes)) {
            option.memory_cost = shape.bytes(program);
            option.in_memory_shape = std::move(shape);
            group.options.push_back(std::move(option));
          }
        }

        // Disk options: every (write placement, consumer read placement
        // combination) pair inside the LCA loop.  Arrays with virtual
        // dimensions stay memory-resident: a disk section indexed only
        // by the declared dimensions cannot distinguish the live values
        // of different intra-tile points of the extra prefix loops.
        if (!decl.indices.empty() && !has_virtual_dims) {
          const auto writes = walk.run(producer, decl, /*is_write=*/true, prefix);
          std::vector<std::vector<IoCandidate>> reads_per_consumer;
          bool reads_ok = true;
          for (const int consumer : site.consumer_stmts) {
            reads_per_consumer.push_back(walk.run(consumer, decl, /*is_write=*/false, prefix));
            if (reads_per_consumer.back().empty()) reads_ok = false;
          }
          if (!writes.empty() && reads_ok && !site.consumer_stmts.empty()) {
            // Cartesian product over the write and all consumer reads.
            std::vector<std::size_t> pick(reads_per_consumer.size() + 1, 0);
            constexpr int kMaxOptions = 256;
            while (true) {
              const IoCandidate& w = writes[pick[0]];
              ChoiceOption option;
              option.write = w;
              option.disk_cost = w.disk_bytes(program, name);
              option.memory_cost = w.buffer.bytes(program);
              std::string label = "write above " + w.label;
              // NOTE: with several consumers only the first read is kept
              // as the representative placement; cost includes all.
              for (std::size_t c = 0; c < reads_per_consumer.size(); ++c) {
                const IoCandidate& r = reads_per_consumer[c][pick[c + 1]];
                option.disk_cost = option.disk_cost + r.disk_bytes(program, name);
                option.memory_cost = option.memory_cost + r.buffer.bytes(program);
                label += ", read above " + r.label;
                option.reads.push_back(r);
              }
              option.label = label + (w.read_required ? " (read required)" : "");
              group.options.push_back(std::move(option));
              if (group.num_options() > kMaxOptions) {
                throw SpecError("too many placement combinations for intermediate '" + name +
                                "'");
              }
              // Odometer.
              std::size_t d = 0;
              for (; d < pick.size(); ++d) {
                const std::size_t limit =
                    d == 0 ? writes.size() : reads_per_consumer[d - 1].size();
                if (++pick[d] < limit) break;
                pick[d] = 0;
              }
              if (d == pick.size()) break;
            }
          }
        } else {
          // Scalars always stay in memory (8 bytes); ensured above.
        }

        if (group.options.empty()) {
          throw InfeasibleError("intermediate '" + name +
                                "' fits neither in memory nor on disk under the given limits");
        }
        out.groups.push_back(std::move(group));
        break;
      }
    }
  }
  return out;
}

expr::Expr option_call_count(const ir::Program& program, const ChoiceOption& option) {
  Expr calls = expr::lit(0);
  for (const IoCandidate& read : option.reads) calls = calls + read.call_count(program);
  if (option.write.has_value()) {
    Expr write_calls = option.write->call_count(program);
    if (option.write->read_required) write_calls = write_calls * expr::lit(2);
    calls = calls + write_calls;
  }
  return calls;
}

expr::Expr option_block_slack(const ir::Program& program, const std::string& array,
                              const ChoiceOption& option, const SynthesisOptions& options) {
  using expr::lit;
  const double array_bytes = program.byte_size(array);
  Expr slack = lit(-1);
  const auto cap = [&](std::int64_t min_block) {
    return lit(std::min(static_cast<double>(min_block), array_bytes));
  };
  for (const IoCandidate& read : option.reads) {
    slack = Expr::max(slack, cap(options.min_read_block_bytes) - read.buffer.bytes(program));
  }
  if (option.write.has_value()) {
    slack = Expr::max(slack,
                      cap(options.min_write_block_bytes) - option.write->buffer.bytes(program));
    if (option.write->read_required) {
      slack = Expr::max(slack,
                        cap(options.min_read_block_bytes) - option.write->buffer.bytes(program));
    }
  }
  return slack;
}

std::string to_text(const Enumeration& enumeration) {
  std::ostringstream os;
  const auto section = [&](ir::ArrayKind kind, const char* title) {
    os << title << "\n";
    for (const ChoiceGroup& group : enumeration.groups) {
      if (group.kind != kind) continue;
      os << "  " << group.array << " (stmt#" << group.stmt_id << "):\n";
      for (const ChoiceOption& option : group.options) {
        os << "    - " << option.label;
        if (!option.in_memory) {
          const IoCandidate* cand =
              !option.reads.empty() ? &option.reads.front() : &*option.write;
          os << "  buffer " << cand->buffer.to_string();
        }
        os << "\n";
      }
    }
  };
  section(ir::ArrayKind::Input, "Input Arrays: (Read Placements)");
  section(ir::ArrayKind::Output, "Output Arrays: (Write Placements)");
  section(ir::ArrayKind::Intermediate, "Intermediates: (Write and Read Placements)");
  return os.str();
}

}  // namespace oocs::core
