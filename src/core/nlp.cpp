#include "core/nlp.hpp"

#include <cmath>

#include "common/error.hpp"

namespace oocs::core {

namespace {

using expr::Expr;

int bits_for(int options) {
  int bits = 0;
  while ((1 << bits) < options) ++bits;
  return bits;
}

std::string lambda_name(const ChoiceGroup& group, std::size_t group_idx, int bit) {
  return "lam_" + group.array + "_g" + std::to_string(group_idx) + "_b" + std::to_string(bit);
}

/// Indicator expression selecting option `c` from the λ bits.
Expr indicator(const std::vector<std::string>& lambdas, int c) {
  std::vector<Expr> factors;
  factors.reserve(lambdas.size());
  for (std::size_t b = 0; b < lambdas.size(); ++b) {
    const Expr bit = expr::var(lambdas[b]);
    factors.push_back(((c >> b) & 1) != 0 ? bit : expr::lit(1) - bit);
  }
  return Expr::mul(std::move(factors));
}

}  // namespace

NlpModel build_nlp(const ir::Program& program, const Enumeration& enumeration,
                   const SynthesisOptions& options) {
  NlpModel model;

  // Tile-size variables, warm-started at 1 (the all-unit-tiles point is
  // maximally memory-feasible, letting the solvers grow tiles greedily).
  for (const std::string& index : enumeration.loop_indices) {
    model.problem.add_variable(tile_var(index), 1, program.range(index), 1);
  }

  Expr total_disk = expr::lit(0);
  Expr total_memory = expr::lit(0);

  for (std::size_t g = 0; g < enumeration.groups.size(); ++g) {
    const ChoiceGroup& group = enumeration.groups[g];
    OOCS_CHECK(group.num_options() >= 1, "empty choice group for ", group.array);

    std::vector<std::string> lambdas;
    const int bits = bits_for(group.num_options());
    for (int b = 0; b < bits; ++b) {
      lambdas.push_back(lambda_name(group, g, b));
      model.problem.add_binary(lambdas.back());
      if (options.add_binary_equalities) {
        const Expr lam = expr::var(lambdas.back());
        model.problem.add_eq("binary_" + lambdas.back(), lam * (expr::lit(1) - lam),
                             /*scale=*/1.0);
      }
    }
    // Exclude unused binary codes when k is not a power of two.
    if ((1 << bits) != group.num_options()) {
      Expr code = expr::lit(0);
      for (int b = 0; b < bits; ++b) {
        code = code + expr::lit(static_cast<double>(1 << b)) * expr::var(lambdas[b]);
      }
      model.problem.add_le("code_range_" + group.array + "_g" + std::to_string(g),
                           code - expr::lit(static_cast<double>(group.num_options() - 1)),
                           /*scale=*/1.0);
    }

    Expr group_disk = expr::lit(0);
    Expr group_memory = expr::lit(0);
    // One block-size constraint per I/O buffer *slot* so that a large
    // buffer in the same option cannot mask a too-small one: a slot per
    // consumer read (aligned across options by position), one for the
    // write buffer, and one for the accumulation read-back.
    std::size_t read_slots = 0;
    for (const ChoiceOption& option : group.options) {
      read_slots = std::max(read_slots, option.reads.size());
    }
    std::vector<Expr> read_slack(read_slots, expr::lit(0));
    Expr write_slack = expr::lit(0);
    Expr readback_slack = expr::lit(0);
    bool any_write = false;
    bool any_readback = false;

    const double array_bytes = program.byte_size(group.array);
    const auto capped = [&](std::int64_t min_block) {
      return expr::lit(std::min(static_cast<double>(min_block), array_bytes));
    };

    for (int c = 0; c < group.num_options(); ++c) {
      const ChoiceOption& option = group.options[static_cast<std::size_t>(c)];
      const Expr ind = indicator(lambdas, c);
      Expr option_cost = option.disk_cost;
      if (options.seek_cost_bytes > 0) {
        option_cost = option_cost +
                      expr::lit(options.seek_cost_bytes) * option_call_count(program, option);
      }
      group_disk = group_disk + ind * option_cost;
      group_memory = group_memory + ind * option.memory_cost;

      for (std::size_t r = 0; r < option.reads.size(); ++r) {
        read_slack[r] = read_slack[r] + ind * (capped(options.min_read_block_bytes) -
                                               option.reads[r].buffer.bytes(program));
      }
      if (option.write.has_value()) {
        write_slack = write_slack + ind * (capped(options.min_write_block_bytes) -
                                           option.write->buffer.bytes(program));
        any_write = true;
        if (option.write->read_required) {
          readback_slack = readback_slack + ind * (capped(options.min_read_block_bytes) -
                                                   option.write->buffer.bytes(program));
          any_readback = true;
        }
      }
    }

    total_disk = total_disk + group_disk;
    total_memory = total_memory + group_memory;
    if (options.enforce_block_constraints) {
      const std::string suffix = group.array + "_g" + std::to_string(g);
      for (std::size_t r = 0; r < read_slots; ++r) {
        model.problem.add_le("read_block_" + suffix + "_r" + std::to_string(r),
                             read_slack[r],
                             static_cast<double>(options.min_read_block_bytes));
      }
      if (any_write) {
        model.problem.add_le("write_block_" + suffix, write_slack,
                             static_cast<double>(options.min_write_block_bytes));
      }
      if (any_readback) {
        model.problem.add_le("readback_block_" + suffix, readback_slack,
                             static_cast<double>(options.min_read_block_bytes));
      }
    }
    model.problem.add_coupled_group(lambdas, group.num_options());
    model.group_lambdas.push_back(std::move(lambdas));
  }

  model.problem.set_objective(total_disk.simplified());
  model.problem.add_le(
      "memory_limit",
      (total_memory - expr::lit(static_cast<double>(options.memory_limit_bytes))).simplified(),
      static_cast<double>(options.memory_limit_bytes));

  model.total_disk_bytes = total_disk.simplified();
  model.total_memory_bytes = total_memory.simplified();
  return model;
}

Decisions decode(const NlpModel& model, const Enumeration& enumeration,
                 const solver::Solution& solution) {
  if (!solution.feasible) {
    throw InfeasibleError("solver found no feasible placement/tiling (max violation " +
                          std::to_string(solution.max_violation) + ")");
  }
  Decisions out;
  for (const std::string& index : enumeration.loop_indices) {
    out.tile_sizes[index] = solution.values.at(tile_var(index));
  }
  for (std::size_t g = 0; g < enumeration.groups.size(); ++g) {
    const auto& lambdas = model.group_lambdas[g];
    int code = 0;
    for (std::size_t b = 0; b < lambdas.size(); ++b) {
      if (solution.values.at(lambdas[b]) != 0) code |= 1 << b;
    }
    code = std::min(code, enumeration.groups[g].num_options() - 1);
    out.option_index.push_back(code);
  }
  return out;
}

double eval_at(const NlpModel& model, const solver::Solution& solution, const expr::Expr& e) {
  expr::Env env;
  for (const solver::Variable& v : model.problem.variables()) {
    env[v.name] = static_cast<double>(solution.values.at(v.name));
  }
  return e.eval(env);
}

}  // namespace oocs::core
