// Communication (I/O) lower bounds for candidate loop nests.
//
// Three sound lower bounds on the disk traffic of *any* plan the
// synthesizer can emit for a program under memory budget M, combined by
// max (each is valid on its own):
//
//  * compulsory — every distinct input array must be read at least
//    once and every output written at least once (cold disk, cold
//    memory).  The classic |inputs| + |outputs| floor.
//
//  * structural — one floor per placement choice group of the §4.1
//    enumeration: the minimum of each option's cost over the whole
//    integer tile box.  Every option cost Size · Π ceil(N_d/T_d) is
//    monotone nonincreasing in every tile size, so the minimum is
//    attained exactly at the full-extent corner T_d = N_d (trip counts
//    all 1) — no grid sampling, no approximation.  Summing the per-group
//    minima bounds the model objective from below because the NLP
//    objective is the sum of the chosen options' costs and every group
//    must choose some option.  This is the term that captures forced
//    intermediate materialization: an intermediate too large for memory
//    has no in-memory option, so its group floor is a full write + read.
//
//  * hbl — the Hölder–Brascamp–Lieb / Loomis–Whitney bound of
//    Dinh & Demmel ("Communication-Optimal Tilings for Projective
//    Nested Loops with Arbitrary Bounds") specialized to our projective
//    references: per update statement, solve the small covering LP
//        min Σ_j s_j   s.t.  ∀ loop index i: Σ_{j : i ∈ idx(A_j)} s_j ≥ 1
//    over the statement's array projections.  Any feasible s gives the
//    per-segment iteration cap F ≤ (2M)^σ with σ = Σ s_j, and the
//    standard segment argument yields
//        Q_words ≥ max(0, M · (|Z| / (2M)^σ − 1)).
//    The LP is solved exactly by vertex enumeration (≤ 3 references per
//    statement); a suboptimal-but-feasible s only weakens the bound, so
//    the construction is sound by design.  Statements share one memory,
//    so the program-level HBL term is the max over statements.
//
// All three terms are pure functions of the program structure (and the
// enumeration, itself canonical), so the bound is invariant under alpha
// renaming of indices and arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "core/access.hpp"
#include "ir/program.hpp"

namespace oocs::core {

/// Per-statement HBL diagnostics.
struct StatementBound {
  int stmt_id = -1;
  /// Σ s_j of the feasible covering-LP point used (σ ≥ 1).
  double sigma = 0;
  /// Iteration-space cardinality |Z| of the statement.
  double iteration_space = 0;
  /// Segment-argument bound for this statement, in bytes.
  double hbl_bytes = 0;
};

struct IoLowerBound {
  /// The combined bound: max(compulsory, structural, hbl), in bytes.
  double bytes = 0;
  /// Lower bound on the NLP objective (disk bytes + seek refinement):
  /// max(bytes, Σ groups min-option corner cost including seek term).
  /// Equals `bytes` when SynthesisOptions::seek_cost_bytes is 0.
  double objective = 0;
  /// |distinct inputs| + |outputs| compulsory-traffic floor.
  double compulsory_bytes = 0;
  /// Σ over choice groups of the per-group box-minimum option cost.
  double structural_bytes = 0;
  /// max over update statements of the segment-argument bound.
  double hbl_bytes = 0;
  /// Per-statement σ / |Z| / bound diagnostics (update statements only).
  std::vector<StatementBound> statements;

  /// bound / achieved, clamped to [0, 1]; 0 when achieved is 0.
  [[nodiscard]] double efficiency(double achieved_bytes) const {
    if (achieved_bytes <= 0 || bytes <= 0) return 0;
    return bytes >= achieved_bytes ? 1.0 : bytes / achieved_bytes;
  }
};

/// Full bound for one enumerated candidate space under `options`
/// (memory limit and seek refinement are read from it).
[[nodiscard]] IoLowerBound io_lower_bound(const ir::Program& program,
                                          const Enumeration& enumeration,
                                          const SynthesisOptions& options);

/// HBL + compulsory part only (no enumeration needed): max over update
/// statements of the segment bound at `memory_bytes`, maxed with the
/// compulsory floor.  Used by the predict_cache cross-check, where the
/// effective fast memory is the buffer limit plus the cache budget.
[[nodiscard]] double hbl_lower_bound_bytes(const ir::Program& program,
                                           std::int64_t memory_bytes);

/// The |distinct inputs| + |outputs| floor on its own.  Intermediates
/// contribute nothing (a cache or a fused schedule can keep them off
/// disk entirely).
[[nodiscard]] double compulsory_traffic_bytes(const ir::Program& program);

}  // namespace oocs::core
