// Nonlinear program construction (paper §4.2, "DCS Input Construction").
//
// Variables: tile sizes T_i ∈ [1, N_i] and, for every choice group with
// more than one option, ⌈log₂ k⌉ binary placement variables λ.  The
// selected option's costs enter the objective/constraints through
// indicator products Π λ / (1−λ), exactly the paper's encoding.
//
// Objective: total disk I/O bytes.  Constraints: the static memory
// model (Σ selected buffer bytes ≤ limit), binary-code range bounds for
// non-power-of-two option counts, optional λ(1−λ)=0 equalities, and the
// minimum-block-size constraints on every selected I/O buffer.
#pragma once

#include <string>
#include <vector>

#include "core/access.hpp"
#include "solver/problem.hpp"

namespace oocs::core {

struct NlpModel {
  solver::Problem problem;
  /// Per enumeration group: the names of its λ bits (LSB first; empty
  /// for single-option groups).
  std::vector<std::vector<std::string>> group_lambdas;
  /// Symbolic totals (over tile and λ variables), for reporting.
  expr::Expr total_disk_bytes;
  expr::Expr total_memory_bytes;
};

/// Builds the nonlinear program for `enumeration` over `program`'s
/// ranges.
[[nodiscard]] NlpModel build_nlp(const ir::Program& program, const Enumeration& enumeration,
                                 const SynthesisOptions& options);

/// The decoded outcome of a solver run.
struct Decisions {
  /// Chosen tile size per loop index.
  std::map<std::string, std::int64_t> tile_sizes;
  /// Chosen option index per enumeration group.
  std::vector<int> option_index;
};

/// Decodes a feasible solver solution back into tile sizes and placement
/// choices.  Throws InfeasibleError if `solution.feasible` is false.
[[nodiscard]] Decisions decode(const NlpModel& model, const Enumeration& enumeration,
                               const solver::Solution& solution);

/// Evaluates `e` at the decoded point (tile variables and λs bound).
[[nodiscard]] double eval_at(const NlpModel& model, const solver::Solution& solution,
                             const expr::Expr& e);

}  // namespace oocs::core
