// Candidate-space dominance pruning (paper §4.2 cost model).
//
// The NLP's size is exponential in nothing but linear in Σ options, yet
// the solvers' λ search space is Π 2^⌈log₂ k_g⌉ — so removing options
// that can never win shrinks the search exponentially.  An option A of
// a group is removed when some other option B of the same group is
// no worse on every axis the NLP can see — I/O cost (disk bytes plus
// the seek refinement), memory footprint, and block-size slack — at
// every point of a deterministic log-spaced tile grid.  All three
// metrics are monomial-like in the tile sizes (products of T_d, N_d and
// constants), so agreement on a dense log grid over the full tile box
// is decisive in practice; ties on every point keep the lower index, so
// the surviving set is a deterministic function of the enumeration.
//
// Groups pruned down to one option lose all their λ bits in build_nlp
// (⌈log₂ 1⌉ = 0), dropping the whole group from the solver's view.
#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hpp"
#include "core/access.hpp"
#include "expr/compiled.hpp"
#include "obs/metrics.hpp"

namespace oocs::core {

namespace {

/// Log-spaced grid {1, 2, 4, …, extent} per dimension, thinned so the
/// cross product stays within `max_points` (same scheme as the greedy
/// warm-start sweep).
std::vector<std::vector<double>> tile_grids(const ir::Program& program,
                                            const std::vector<std::string>& loop_indices,
                                            std::int64_t max_points) {
  const std::size_t dims = loop_indices.size();
  const int samples = std::max(
      2, static_cast<int>(std::floor(
             std::pow(static_cast<double>(max_points), 1.0 / static_cast<double>(dims)))));
  std::vector<std::vector<double>> grids(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const std::int64_t extent = program.range(loop_indices[d]);
    std::vector<double> full;
    for (std::int64_t v = 1; v < extent; v *= 2) full.push_back(static_cast<double>(v));
    full.push_back(static_cast<double>(extent));
    if (static_cast<int>(full.size()) > samples) {
      std::vector<double> thinned;
      const double step =
          static_cast<double>(full.size() - 1) / static_cast<double>(samples - 1);
      for (int k = 0; k < samples; ++k) {
        thinned.push_back(full[static_cast<std::size_t>(std::llround(k * step))]);
      }
      thinned.erase(std::unique(thinned.begin(), thinned.end()), thinned.end());
      full = std::move(thinned);
    }
    grids[d] = std::move(full);
  }
  return grids;
}

}  // namespace

int prune_dominated(const ir::Program& program, Enumeration& enumeration,
                    const SynthesisOptions& options, std::int64_t max_points) {
  if (enumeration.loop_indices.empty()) return 0;

  expr::VarTable table;
  for (const std::string& index : enumeration.loop_indices) table.intern(tile_var(index));
  const std::vector<std::vector<double>> grids =
      tile_grids(program, enumeration.loop_indices, max_points);

  int removed = 0;
  std::vector<double> point(enumeration.loop_indices.size());
  for (ChoiceGroup& group : enumeration.groups) {
    const std::size_t k = group.options.size();
    if (k < 2) continue;

    // Metric samples, option-major: [option][point].
    std::vector<std::vector<double>> cost(k);
    std::vector<std::vector<double>> memory(k);
    std::vector<std::vector<double>> slack(k);
    for (std::size_t c = 0; c < k; ++c) {
      const ChoiceOption& option = group.options[c];
      expr::Expr cost_expr = option.disk_cost;
      if (options.seek_cost_bytes > 0) {
        cost_expr =
            cost_expr + expr::lit(options.seek_cost_bytes) * option_call_count(program, option);
      }
      const expr::CompiledExpr cost_fn(cost_expr, table);
      const expr::CompiledExpr memory_fn(option.memory_cost, table);
      const expr::CompiledExpr slack_fn(
          option_block_slack(program, group.array, option, options), table);

      std::vector<std::size_t> cursor(grids.size(), 0);
      while (true) {
        for (std::size_t d = 0; d < grids.size(); ++d) point[d] = grids[d][cursor[d]];
        cost[c].push_back(cost_fn.eval(point));
        memory[c].push_back(memory_fn.eval(point));
        slack[c].push_back(slack_fn.eval(point));
        std::size_t d = 0;
        for (; d < grids.size(); ++d) {
          if (++cursor[d] < grids[d].size()) break;
          cursor[d] = 0;
        }
        if (d == grids.size()) break;
      }
    }

    const std::size_t num_points = cost[0].size();
    // b beats-or-ties a everywhere; strict somewhere or b first on ties.
    const auto dominates = [&](std::size_t b, std::size_t a) {
      bool strict = false;
      for (std::size_t p = 0; p < num_points; ++p) {
        if (cost[b][p] > cost[a][p] || memory[b][p] > memory[a][p] ||
            slack[b][p] > slack[a][p]) {
          return false;
        }
        strict = strict || cost[b][p] < cost[a][p] || memory[b][p] < memory[a][p] ||
                 slack[b][p] < slack[a][p];
      }
      return strict || b < a;
    };

    std::vector<char> dead(k, 0);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k && !dead[a]; ++b) {
        if (b != a && !dead[b] && dominates(b, a)) dead[a] = 1;
      }
    }

    std::vector<ChoiceOption> kept;
    kept.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
      if (!dead[c]) kept.push_back(std::move(group.options[c]));
    }
    removed += static_cast<int>(k - kept.size());
    group.options = std::move(kept);
  }

  if (removed > 0) {
    obs::metrics().counter("synth.pruned_options").add(removed);
    log::debug("prune_dominated: removed ", removed, " dominated placement options");
  }
  return removed;
}

int bound_prune_dominated(const ir::Program& program, Enumeration& enumeration,
                          const SynthesisOptions& options, std::int64_t max_points) {
  if (enumeration.loop_indices.empty()) return 0;

  expr::VarTable table;
  for (const std::string& index : enumeration.loop_indices) table.intern(tile_var(index));
  const std::vector<std::vector<double>> grids =
      tile_grids(program, enumeration.loop_indices, max_points);

  // The two cost extremes are exact: every option's cost (disk bytes
  // plus the seek refinement) is a product of ceil(N/T) trip counts and
  // constants, monotone nonincreasing in each tile size — its maximum
  // over the tile box sits at all-ones tiles and its minimum at the
  // full-extent corner.  Slack is likewise nonincreasing (a constant
  // block target minus a growing buffer), so the all-ones slack bounds
  // it from above everywhere.
  const std::size_t dims = enumeration.loop_indices.size();
  std::vector<double> ones(dims, 1.0);
  std::vector<double> corner(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    corner[d] = static_cast<double>(program.range(enumeration.loop_indices[d]));
  }

  int removed = 0;
  std::vector<double> point(dims);
  for (ChoiceGroup& group : enumeration.groups) {
    const std::size_t k = group.options.size();
    if (k < 2) continue;

    std::vector<double> cost_min(k);     // at the full-extent corner
    std::vector<double> cost_max(k);     // at all-ones tiles
    std::vector<double> slack_max(k);    // at all-ones tiles
    std::vector<std::vector<double>> memory(k);  // [option][grid point]
    for (std::size_t c = 0; c < k; ++c) {
      const ChoiceOption& option = group.options[c];
      expr::Expr cost_expr = option.disk_cost;
      if (options.seek_cost_bytes > 0) {
        cost_expr =
            cost_expr + expr::lit(options.seek_cost_bytes) * option_call_count(program, option);
      }
      const expr::CompiledExpr cost_fn(cost_expr, table);
      const expr::CompiledExpr memory_fn(option.memory_cost, table);
      const expr::CompiledExpr slack_fn(
          option_block_slack(program, group.array, option, options), table);
      cost_min[c] = cost_fn.eval(corner);
      cost_max[c] = cost_fn.eval(ones);
      slack_max[c] = slack_fn.eval(ones);

      std::vector<std::size_t> cursor(grids.size(), 0);
      while (true) {
        for (std::size_t d = 0; d < grids.size(); ++d) point[d] = grids[d][cursor[d]];
        memory[c].push_back(memory_fn.eval(point));
        std::size_t d = 0;
        for (; d < grids.size(); ++d) {
          if (++cursor[d] < grids[d].size()) break;
          cursor[d] = 0;
        }
        if (d == grids.size()) break;
      }
    }

    const std::size_t num_points = memory[0].size();
    // B's worst cost beats A's best cost (lower index wins exact ties),
    // B is block-feasible everywhere, and B never needs more memory —
    // so any feasible point using A stays feasible and gets no worse
    // when switched to B.
    const auto bound_dominates = [&](std::size_t b, std::size_t a) {
      if (cost_max[b] > cost_min[a]) return false;
      if (cost_max[b] == cost_min[a] && b > a) return false;
      if (slack_max[b] > 0) return false;
      for (std::size_t p = 0; p < num_points; ++p) {
        if (memory[b][p] > memory[a][p]) return false;
      }
      return true;
    };

    std::vector<char> dead(k, 0);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k && !dead[a]; ++b) {
        if (b != a && !dead[b] && bound_dominates(b, a)) dead[a] = 1;
      }
    }

    std::vector<ChoiceOption> kept;
    kept.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
      if (!dead[c]) kept.push_back(std::move(group.options[c]));
    }
    removed += static_cast<int>(k - kept.size());
    group.options = std::move(kept);
  }

  if (removed > 0) {
    obs::metrics().counter("synth.bound_pruned_options").add(removed);
    log::debug("bound_prune_dominated: removed ", removed, " bound-dominated placement options");
  }
  return removed;
}

}  // namespace oocs::core
