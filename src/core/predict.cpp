#include "core/predict.hpp"

#include <algorithm>
#include <cassert>

#include "core/bounds.hpp"
#include "obs/trace.hpp"

namespace oocs::core {

double PredictedIo::seconds(double seek_seconds, double read_bw, double write_bw,
                            int procs) const {
  const double p = static_cast<double>(procs);
  return total_calls() * seek_seconds + read_bytes / (p * read_bw) +
         write_bytes / (p * write_bw);
}

double PredictedIo::serial_seconds(double seek_seconds, double read_bw, double write_bw,
                                   double compute_seconds, int procs) const {
  return seconds(seek_seconds, read_bw, write_bw, procs) + compute_seconds;
}

double PredictedIo::overlapped_seconds(double seek_seconds, double read_bw, double write_bw,
                                       double compute_seconds, int procs) const {
  return std::max(seconds(seek_seconds, read_bw, write_bw, procs), compute_seconds);
}

double predict_flops(const ir::Program& program) {
  double total = 0;
  const std::function<void(const ir::Node&, double)> visit = [&](const ir::Node& node,
                                                                 double space) {
    if (node.kind == ir::Node::Kind::Stmt) {
      if (node.stmt.kind == ir::StmtKind::Update) total += 2 * space;
      return;
    }
    const double extent = static_cast<double>(program.range(node.index));
    for (const auto& child : node.children) visit(*child, space * extent);
  };
  for (const auto& root : program.roots()) visit(*root, 1);
  return total;
}

PredictedIo predict_io(const ir::Program& program, const Enumeration& enumeration,
                       const Decisions& decisions) {
  expr::Env env;
  for (const auto& [index, tile] : decisions.tile_sizes) {
    env[tile_var(index)] = static_cast<double>(tile);
  }

  // The static prediction assumes every call moves a full buffer (edge
  // tiles are not modeled), exactly like the paper's cost expressions:
  // volume = calls × buffer bytes slightly over-estimates what the
  // generated code actually transfers.
  PredictedIo io;
  for (std::size_t g = 0; g < enumeration.groups.size(); ++g) {
    const ChoiceGroup& group = enumeration.groups[g];
    const ChoiceOption& option =
        group.options[static_cast<std::size_t>(decisions.option_index[g])];

    for (const IoCandidate& read : option.reads) {
      const double calls = read.call_count(program).eval(env);
      io.read_calls += calls;
      io.read_bytes += calls * read.buffer.bytes(program).eval(env);
    }
    if (option.write.has_value()) {
      const IoCandidate& write = *option.write;
      const double calls = write.call_count(program).eval(env);
      const double buffer_bytes = write.buffer.bytes(program).eval(env);
      io.write_calls += calls;
      io.write_bytes += calls * buffer_bytes;
      if (write.read_required) {
        // Accumulation read-back plus the zero-initialization pass.
        io.read_calls += calls;
        io.read_bytes += calls * buffer_bytes;
        double init_calls = 1;
        for (const BufferShape::Dim& dim : write.buffer.dims) {
          if (!dim.tiled) continue;
          init_calls *= expr::Expr::ceil_div(
                            expr::lit(static_cast<double>(program.range(dim.index))),
                            expr::var(tile_var(dim.index)))
                            .eval(env);
        }
        io.write_calls += init_calls;
        io.write_bytes += init_calls * buffer_bytes;
      }
    }
  }
  return io;
}

namespace {

/// One reuse opportunity: a distinct tile set of `footprint_bytes`
/// whose residency converts the listed calls into hits / saved writes.
struct ReuseCandidate {
  double footprint_bytes = 0;  // distinct tiles × tile bytes
  double hits = 0;             // read calls served from the cache
  double hit_bytes = 0;
  double saved_write_calls = 0;  // write-backs absorbed in place
  double saved_write_bytes = 0;
};

double redundancy_of(const ir::Program& program, const IoCandidate& candidate,
                     const expr::Env& env) {
  double trips = 1;
  for (const std::string& index : candidate.redundant) {
    trips *= expr::Expr::ceil_div(expr::lit(static_cast<double>(program.range(index))),
                                  expr::var(tile_var(index)))
                 .eval(env);
  }
  return trips;
}

/// Exact-key hits require identical sections.  Compare the *evaluated*
/// per-dim extents: a symbolically tiled dim whose chosen tile equals
/// the full range produces the same sections as an untiled one (the
/// common case on DCS-optimal plans, which tile few loops).
bool same_sections(const ir::Program& program, const expr::Env& env, const BufferShape& a,
                   const BufferShape& b) {
  if (a.dims.size() != b.dims.size()) return false;
  const auto extent = [&](const BufferShape::Dim& dim) {
    const double range = static_cast<double>(program.range(dim.index));
    if (!dim.tiled) return range;
    const auto it = env.find(tile_var(dim.index));
    return it != env.end() ? std::min(it->second, range) : range;
  };
  for (std::size_t i = 0; i < a.dims.size(); ++i) {
    if (a.dims[i].index != b.dims[i].index || extent(a.dims[i]) != extent(b.dims[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

CachePrediction predict_cache(const ir::Program& program, const Enumeration& enumeration,
                              const Decisions& decisions, std::int64_t budget_bytes) {
  OOCS_SPAN("synth", "predict_cache");
  expr::Env env;
  for (const auto& [index, tile] : decisions.tile_sizes) {
    env[tile_var(index)] = static_cast<double>(tile);
  }

  CachePrediction prediction;
  prediction.budget_bytes = budget_bytes;
  prediction.with_cache = predict_io(program, enumeration, decisions);
  const double total_read_calls = prediction.with_cache.read_calls;
  if (budget_bytes <= 0) return prediction;

  std::vector<ReuseCandidate> candidates;
  for (std::size_t g = 0; g < enumeration.groups.size(); ++g) {
    const ChoiceGroup& group = enumeration.groups[g];
    const ChoiceOption& option =
        group.options[static_cast<std::size_t>(decisions.option_index[g])];
    // Intermediates leave their producer's tiles resident (flush keeps
    // entries clean, not dropped), so a consumer pass over matching
    // sections hits even without redundant loops of its own.
    const bool producer_resident =
        group.kind == ir::ArrayKind::Intermediate && option.write.has_value();
    for (const IoCandidate& read : option.reads) {
      const double redundancy = redundancy_of(program, read, env);
      const bool seeded = producer_resident &&
                          same_sections(program, env, read.buffer, option.write->buffer);
      if (redundancy <= 1 && !seeded) continue;
      const double calls = read.call_count(program).eval(env);
      const double tile_bytes = read.buffer.bytes(program).eval(env);
      const double distinct = calls / redundancy;
      ReuseCandidate reuse;
      reuse.footprint_bytes = distinct * tile_bytes;
      reuse.hits = seeded ? calls : calls - distinct;
      reuse.hit_bytes = reuse.hits * tile_bytes;
      candidates.push_back(reuse);
    }
    if (option.write.has_value()) {
      const IoCandidate& write = *option.write;
      const double redundancy = redundancy_of(program, write, env);
      if (redundancy > 1) {
        // Redundant-loop accumulation: each repeat's read-back hits the
        // dirty resident tile, and its write-back is absorbed in place
        // — only the final flush reaches the disk.
        const double calls = write.call_count(program).eval(env);
        const double tile_bytes = write.buffer.bytes(program).eval(env);
        const double repeats = calls - calls / redundancy;
        ReuseCandidate reuse;
        reuse.footprint_bytes = calls / redundancy * tile_bytes;
        if (write.read_required) {
          reuse.hits = repeats;
          reuse.hit_bytes = repeats * tile_bytes;
        }
        reuse.saved_write_calls = repeats;
        reuse.saved_write_bytes = repeats * tile_bytes;
        candidates.push_back(reuse);
      }
    }
  }

  // Greedy allocation, smallest working set first: mirrors LRU, which
  // retains small cyclic sets and thrashes on sets over budget.
  std::sort(candidates.begin(), candidates.end(),
            [](const ReuseCandidate& a, const ReuseCandidate& b) {
              return a.footprint_bytes < b.footprint_bytes;
            });
  double remaining = static_cast<double>(budget_bytes);
  for (const ReuseCandidate& reuse : candidates) {
    if (reuse.footprint_bytes > remaining) continue;  // would thrash: no hits
    remaining -= reuse.footprint_bytes;
    prediction.hits += reuse.hits;
    prediction.hit_bytes += reuse.hit_bytes;
    prediction.saved_write_calls += reuse.saved_write_calls;
    prediction.saved_write_bytes += reuse.saved_write_bytes;
  }

  prediction.with_cache.read_calls -= prediction.hits;
  prediction.with_cache.read_bytes -= prediction.hit_bytes;
  prediction.with_cache.write_calls -= prediction.saved_write_calls;
  prediction.with_cache.write_bytes -= prediction.saved_write_bytes;
  if (total_read_calls > 0) prediction.expected_hit_rate = prediction.hits / total_read_calls;
  // No cache can absorb compulsory traffic: every input must be read
  // and every output written at least once, so the reuse model's
  // remaining traffic can never fall below that floor.  (The tests
  // additionally check the tighter budget-aware HBL floor at M+budget.)
  assert(prediction.with_cache.read_bytes + prediction.with_cache.write_bytes >=
         compulsory_traffic_bytes(program) * (1.0 - 1e-6));
  return prediction;
}

}  // namespace oocs::core
