#include "core/predict.hpp"

#include <algorithm>

namespace oocs::core {

double PredictedIo::seconds(double seek_seconds, double read_bw, double write_bw,
                            int procs) const {
  const double p = static_cast<double>(procs);
  return total_calls() * seek_seconds + read_bytes / (p * read_bw) +
         write_bytes / (p * write_bw);
}

double PredictedIo::serial_seconds(double seek_seconds, double read_bw, double write_bw,
                                   double compute_seconds, int procs) const {
  return seconds(seek_seconds, read_bw, write_bw, procs) + compute_seconds;
}

double PredictedIo::overlapped_seconds(double seek_seconds, double read_bw, double write_bw,
                                       double compute_seconds, int procs) const {
  return std::max(seconds(seek_seconds, read_bw, write_bw, procs), compute_seconds);
}

double predict_flops(const ir::Program& program) {
  double total = 0;
  const std::function<void(const ir::Node&, double)> visit = [&](const ir::Node& node,
                                                                 double space) {
    if (node.kind == ir::Node::Kind::Stmt) {
      if (node.stmt.kind == ir::StmtKind::Update) total += 2 * space;
      return;
    }
    const double extent = static_cast<double>(program.range(node.index));
    for (const auto& child : node.children) visit(*child, space * extent);
  };
  for (const auto& root : program.roots()) visit(*root, 1);
  return total;
}

PredictedIo predict_io(const ir::Program& program, const Enumeration& enumeration,
                       const Decisions& decisions) {
  expr::Env env;
  for (const auto& [index, tile] : decisions.tile_sizes) {
    env[tile_var(index)] = static_cast<double>(tile);
  }

  // The static prediction assumes every call moves a full buffer (edge
  // tiles are not modeled), exactly like the paper's cost expressions:
  // volume = calls × buffer bytes slightly over-estimates what the
  // generated code actually transfers.
  PredictedIo io;
  for (std::size_t g = 0; g < enumeration.groups.size(); ++g) {
    const ChoiceGroup& group = enumeration.groups[g];
    const ChoiceOption& option =
        group.options[static_cast<std::size_t>(decisions.option_index[g])];

    for (const IoCandidate& read : option.reads) {
      const double calls = read.call_count(program).eval(env);
      io.read_calls += calls;
      io.read_bytes += calls * read.buffer.bytes(program).eval(env);
    }
    if (option.write.has_value()) {
      const IoCandidate& write = *option.write;
      const double calls = write.call_count(program).eval(env);
      const double buffer_bytes = write.buffer.bytes(program).eval(env);
      io.write_calls += calls;
      io.write_bytes += calls * buffer_bytes;
      if (write.read_required) {
        // Accumulation read-back plus the zero-initialization pass.
        io.read_calls += calls;
        io.read_bytes += calls * buffer_bytes;
        double init_calls = 1;
        for (const BufferShape::Dim& dim : write.buffer.dims) {
          if (!dim.tiled) continue;
          init_calls *= expr::Expr::ceil_div(
                            expr::lit(static_cast<double>(program.range(dim.index))),
                            expr::var(tile_var(dim.index)))
                            .eval(env);
        }
        io.write_calls += init_calls;
        io.write_bytes += init_calls * buffer_bytes;
      }
    }
  }
  return io;
}

}  // namespace oocs::core
