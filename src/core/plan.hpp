// Concrete out-of-core execution plans.
//
// An OocPlan is the executable form of the synthesized concrete code
// (paper Fig. 4b): a tree of tiling loops containing disk reads/writes,
// buffer zeroing and tile-level contraction kernels, plus the chosen
// tile sizes and the in-memory buffer table.  It can be pretty-printed
// as concrete code or interpreted by rt::PlanInterpreter (for real) and
// by the dry-run walker (paper-scale disk-time simulation).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/access.hpp"
#include "core/nlp.hpp"
#include "ir/program.hpp"
#include "trans/tiled.hpp"

namespace oocs::core {

/// One in-memory buffer holding a (tile of an) array.
struct PlanBuffer {
  std::string name;   // unique, e.g. "A#g0"
  std::string array;  // the disk/virtual array it stages
  BufferShape shape;

  /// Allocation size in elements given the chosen tile sizes.
  [[nodiscard]] std::int64_t elements(const ir::Program& program,
                                      const std::map<std::string, std::int64_t>& tiles) const;
};

struct PlanOp {
  enum class Kind {
    ReadDisk,    // fill `buffer` from the disk array section
    WriteDisk,   // flush `buffer` to the disk array section
    ZeroBuffer,  // zero the buffer region covered by the current tile
    Contract,    // run `stmt` over the current tile using the buffers
  };
  Kind kind = Kind::Contract;
  int buffer = -1;  // ReadDisk/WriteDisk/ZeroBuffer
  /// ReadDisk/WriteDisk: part of a read-modify-write accumulation pair.
  /// Parallel executors turn the read into a buffer zero and the write
  /// into a GA-style atomic accumulate.
  bool rmw = false;
  ir::Stmt stmt;    // Contract
  /// Contract: the intra-tile iteration indices (the statement's
  /// enclosing loop indices, outermost first).
  std::vector<std::string> loops;
  int target_buffer = -1;
  int lhs_buffer = -1;
  int rhs_buffer = -1;
};

struct PlanNode {
  enum class Kind { Loop, Op };
  Kind kind = Kind::Op;
  /// Loop: tiling loop over this index (step = chosen tile size).
  std::string index;
  std::vector<PlanNode> children;
  PlanOp op;

  [[nodiscard]] static PlanNode loop(std::string index);
  [[nodiscard]] static PlanNode make_op(PlanOp op);
};

struct OocPlan {
  /// Own copy of the source program (ranges + declarations).
  ir::Program program;
  std::map<std::string, std::int64_t> tile_sizes;
  std::vector<PlanBuffer> buffers;
  std::vector<PlanNode> roots;

  /// Total bytes of all buffers (static memory model).
  [[nodiscard]] std::int64_t buffer_bytes() const;
  /// Tile size of `index` (every program loop index has one).
  [[nodiscard]] std::int64_t tile(const std::string& index) const;
};

/// Assembles the concrete plan from the tiled program, the enumeration
/// and the solver's decoded decisions.
[[nodiscard]] OocPlan build_plan(const trans::TiledProgram& tiled,
                                 const Enumeration& enumeration, const Decisions& decisions);

/// Renders the plan as concrete code in the paper's Fig. 4b style.
[[nodiscard]] std::string to_text(const OocPlan& plan);

}  // namespace oocs::core
