#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "expr/expr.hpp"

namespace oocs::core {

namespace {

using ir::ArrayKind;
using ir::Node;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;

/// Exact minimum of Σ s over {s ≥ 0, ∀P ∈ patterns: Σ_{j∈P} s_j ≥ 1}
/// by vertex enumeration, returning a *feasible* optimal point (any
/// feasible point yields a valid HBL exponent, so numerical slack is
/// absorbed by inflating the result, never by relaxing feasibility).
/// `n` ≤ 3 in this IR (target, lhs, rhs); patterns are bitmasks over
/// the reference slots.
std::vector<double> covering_lp(int n, const std::vector<unsigned>& patterns) {
  const auto feasible = [&](const std::vector<double>& s) {
    for (const double v : s) {
      if (v < -1e-9) return false;
    }
    for (const unsigned p : patterns) {
      double sum = 0;
      for (int j = 0; j < n; ++j) {
        if ((p >> j) & 1U) sum += s[static_cast<std::size_t>(j)];
      }
      if (sum < 1.0 - 1e-9) return false;
    }
    return true;
  };

  // The all-ones point is always feasible (every pattern is nonempty).
  std::vector<double> best(static_cast<std::size_t>(n), 1.0);
  double best_sum = static_cast<double>(n);

  // Candidate vertex rows: one equality per pattern (Σ_{j∈P} s_j = 1)
  // and one per nonnegativity bound (s_j = 0).
  struct Row {
    double a[3] = {0, 0, 0};
    double b = 0;
  };
  std::vector<Row> rows;
  for (const unsigned p : patterns) {
    Row row;
    for (int j = 0; j < n; ++j) row.a[j] = ((p >> j) & 1U) != 0 ? 1.0 : 0.0;
    row.b = 1.0;
    rows.push_back(row);
  }
  for (int j = 0; j < n; ++j) {
    Row row;
    row.a[j] = 1.0;
    row.b = 0.0;
    rows.push_back(row);
  }

  // Gaussian elimination on an n×n subsystem; false on (near-)singular.
  const auto solve = [&](const std::vector<std::size_t>& pick, std::vector<double>& s) {
    double m[3][4] = {};
    for (int r = 0; r < n; ++r) {
      const Row& row = rows[pick[static_cast<std::size_t>(r)]];
      for (int c = 0; c < n; ++c) m[r][c] = row.a[c];
      m[r][n] = row.b;
    }
    for (int col = 0; col < n; ++col) {
      int pivot = -1;
      double pmag = 1e-9;
      for (int r = col; r < n; ++r) {
        if (std::fabs(m[r][col]) > pmag) {
          pivot = r;
          pmag = std::fabs(m[r][col]);
        }
      }
      if (pivot < 0) return false;
      for (int c = 0; c <= n; ++c) std::swap(m[col][c], m[pivot][c]);
      for (int r = 0; r < n; ++r) {
        if (r == col) continue;
        const double f = m[r][col] / m[col][col];
        for (int c = col; c <= n; ++c) m[r][c] -= f * m[col][c];
      }
    }
    for (int r = 0; r < n; ++r) s[static_cast<std::size_t>(r)] = m[r][n] / m[r][r];
    return true;
  };

  std::vector<std::size_t> pick(static_cast<std::size_t>(n));
  std::vector<double> s(static_cast<std::size_t>(n));
  const std::size_t total = rows.size();
  // All size-n row subsets (≤ C(10,3) = 120 with this IR's shapes).
  const auto enumerate = [&](auto&& self, std::size_t depth, std::size_t from) -> void {
    if (depth == static_cast<std::size_t>(n)) {
      if (!solve(pick, s)) return;
      if (!feasible(s)) return;
      double sum = 0;
      for (const double v : s) sum += std::max(0.0, v);
      if (sum < best_sum - 1e-12) {
        best_sum = sum;
        best = s;
        for (double& v : best) v = std::max(0.0, v);
      }
      return;
    }
    for (std::size_t r = from; r < total; ++r) {
      pick[depth] = r;
      self(self, depth + 1, r + 1);
    }
  };
  enumerate(enumerate, 0, 0);

  // Inflate toward feasibility: the checks above admit a 1e-9 slack, so
  // push each exponent up past it.  A larger σ only weakens (never
  // invalidates) the resulting bound.
  for (double& v : best) v += 2e-9;
  return best;
}

/// Segment-argument bound in bytes for one statement: iteration space
/// |Z|, covering exponent σ, memory M.
double segment_bound_bytes(double iteration_space, double sigma, double memory_bytes) {
  const double m_words = std::max(1.0, memory_bytes / static_cast<double>(ir::kElementBytes));
  const double cap = std::pow(2.0 * m_words, sigma);
  if (!(cap > 0) || !std::isfinite(cap)) return 0;
  const double words = m_words * (iteration_space / cap - 1.0);
  return std::max(0.0, words) * static_cast<double>(ir::kElementBytes);
}

/// Per update statement: the covering LP over its array projections and
/// the segment bound at `memory_bytes`.
std::vector<StatementBound> statement_bounds(const Program& program,
                                             std::int64_t memory_bytes) {
  std::vector<StatementBound> out;
  std::vector<std::string> loop_stack;
  const std::function<void(const Node&)> visit = [&](const Node& node) {
    if (node.kind == Node::Kind::Loop) {
      loop_stack.push_back(node.index);
      for (const auto& child : node.children) visit(*child);
      loop_stack.pop_back();
      return;
    }
    const Stmt& stmt = node.stmt;
    if (stmt.kind != StmtKind::Update) return;

    const std::vector<const ir::ArrayRef*> refs = stmt.refs();
    const int n = static_cast<int>(refs.size());

    // Coverage pattern of each enclosing loop index; indices covered by
    // no reference are pure repetition and drop out of |Z| (iterations
    // along them revisit the same data).
    double iteration_space = 1;
    std::set<unsigned> pattern_set;
    for (const std::string& index : loop_stack) {
      unsigned pattern = 0;
      for (int j = 0; j < n; ++j) {
        const auto& idx = refs[static_cast<std::size_t>(j)]->indices;
        if (std::find(idx.begin(), idx.end(), index) != idx.end()) pattern |= 1U << j;
      }
      if (pattern == 0) continue;
      iteration_space *= static_cast<double>(program.range(index));
      pattern_set.insert(pattern);
    }

    StatementBound bound;
    bound.stmt_id = stmt.id;
    bound.iteration_space = iteration_space;
    if (pattern_set.empty()) {
      bound.sigma = 0;
      bound.hbl_bytes = 0;
    } else {
      const std::vector<unsigned> patterns(pattern_set.begin(), pattern_set.end());
      const std::vector<double> s = covering_lp(n, patterns);
      double sigma = 0;
      for (const double v : s) sigma += v;
      bound.sigma = sigma;
      bound.hbl_bytes =
          segment_bound_bytes(iteration_space, sigma, static_cast<double>(memory_bytes));
    }
    out.push_back(bound);
  };
  for (const auto& root : program.roots()) visit(*root);
  return out;
}

/// Full-extent corner environment: T_d = N_d, where every option cost
/// (a product of Size and ceil(N_d/T_d) trip factors, optionally plus a
/// seek term with the same monotonicity) attains its exact minimum over
/// the whole integer tile box.
expr::Env corner_env(const Program& program, const Enumeration& enumeration) {
  expr::Env env;
  for (const std::string& index : enumeration.loop_indices) {
    env[tile_var(index)] = static_cast<double>(program.range(index));
  }
  return env;
}

}  // namespace

double compulsory_traffic_bytes(const Program& program) {
  std::set<std::string> inputs;
  std::set<std::string> outputs;
  program.for_each_stmt([&](const Stmt& stmt) {
    for (const ir::ArrayRef* ref : stmt.refs()) {
      const ArrayKind kind = program.array(ref->array).kind;
      if (kind == ArrayKind::Input) inputs.insert(ref->array);
      if (kind == ArrayKind::Output && ref == &stmt.target) outputs.insert(ref->array);
    }
  });
  double bytes = 0;
  for (const std::string& name : inputs) bytes += program.byte_size(name);
  for (const std::string& name : outputs) bytes += program.byte_size(name);
  return bytes;
}

double hbl_lower_bound_bytes(const Program& program, std::int64_t memory_bytes) {
  double hbl = 0;
  for (const StatementBound& bound : statement_bounds(program, memory_bytes)) {
    hbl = std::max(hbl, bound.hbl_bytes);
  }
  return std::max(hbl, compulsory_traffic_bytes(program));
}

IoLowerBound io_lower_bound(const Program& program, const Enumeration& enumeration,
                            const SynthesisOptions& options) {
  IoLowerBound bound;
  bound.compulsory_bytes = compulsory_traffic_bytes(program);
  bound.statements = statement_bounds(program, options.memory_limit_bytes);
  for (const StatementBound& stmt : bound.statements) {
    bound.hbl_bytes = std::max(bound.hbl_bytes, stmt.hbl_bytes);
  }

  // Per-group box minima at the full-extent corner.
  const expr::Env corner = corner_env(program, enumeration);
  double structural_objective = 0;
  for (const ChoiceGroup& group : enumeration.groups) {
    double min_bytes = std::numeric_limits<double>::infinity();
    double min_objective = std::numeric_limits<double>::infinity();
    for (const ChoiceOption& option : group.options) {
      const double bytes = option.disk_cost.eval(corner);
      double cost = bytes;
      if (options.seek_cost_bytes > 0 && !option.in_memory) {
        cost += options.seek_cost_bytes * option_call_count(program, option).eval(corner);
      }
      min_bytes = std::min(min_bytes, bytes);
      min_objective = std::min(min_objective, cost);
    }
    if (std::isfinite(min_bytes)) bound.structural_bytes += min_bytes;
    if (std::isfinite(min_objective)) structural_objective += min_objective;
  }

  bound.bytes = std::max({bound.compulsory_bytes, bound.structural_bytes, bound.hbl_bytes});
  bound.objective = std::max(bound.bytes, structural_objective);
  return bound;
}

}  // namespace oocs::core
