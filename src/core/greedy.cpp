#include "core/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/nlp.hpp"

namespace oocs::core {

using expr::Expr;

GreedyEvaluator::GreedyEvaluator(const ir::Program& program, const Enumeration& enumeration,
                                 const SynthesisOptions& options)
    : limit_(static_cast<double>(options.memory_limit_bytes)),
      enforce_blocks_(options.enforce_block_constraints) {
  expr::VarTable table;
  for (const std::string& index : enumeration.loop_indices) table.intern(tile_var(index));

  groups_.reserve(enumeration.groups.size());
  for (const ChoiceGroup& group : enumeration.groups) {
    std::vector<Option> options_compiled;
    options_compiled.reserve(group.options.size());
    for (const ChoiceOption& option : group.options) {
      Expr cost = option.disk_cost;
      if (options.seek_cost_bytes > 0) {
        cost = cost + expr::lit(options.seek_cost_bytes) * option_call_count(program, option);
      }
      options_compiled.push_back(Option{
          expr::CompiledExpr(cost, table), expr::CompiledExpr(option.memory_cost, table),
          expr::CompiledExpr(option_block_slack(program, group.array, option, options), table)});
    }
    groups_.push_back(std::move(options_compiled));
  }
  mem_of_.resize(groups_.size());
  cost_of_.resize(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    mem_of_[g].resize(groups_[g].size());
    cost_of_[g].resize(groups_[g].size());
  }
}

GreedyEvaluator::PointResult GreedyEvaluator::place(std::span<const double> point) {
  PointResult result;
  result.choice.assign(groups_.size(), 0);

  double total_memory = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    int best = -1;
    for (std::size_t c = 0; c < groups_[g].size(); ++c) {
      if (enforce_blocks_ && groups_[g][c].block_slack.eval(point) > 0) {
        mem_of_[g][c] = std::numeric_limits<double>::infinity();
        cost_of_[g][c] = std::numeric_limits<double>::infinity();
        continue;
      }
      mem_of_[g][c] = groups_[g][c].memory.eval(point);
      cost_of_[g][c] = groups_[g][c].cost.eval(point);
      if (best < 0 || cost_of_[g][c] < cost_of_[g][static_cast<std::size_t>(best)] ||
          (cost_of_[g][c] == cost_of_[g][static_cast<std::size_t>(best)] &&
           mem_of_[g][c] < mem_of_[g][static_cast<std::size_t>(best)])) {
        best = static_cast<int>(c);
      }
    }
    if (best < 0) return result;  // no usable option at this point
    result.choice[g] = best;
    total_memory += mem_of_[g][static_cast<std::size_t>(best)];
  }

  while (total_memory > limit_) {
    std::size_t worst = groups_.size();
    double worst_memory = -1;
    int worst_next = -1;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const double current = mem_of_[g][static_cast<std::size_t>(result.choice[g])];
      if (current <= worst_memory) continue;
      int next = -1;
      for (std::size_t c = 0; c < mem_of_[g].size(); ++c) {
        if (mem_of_[g][c] >= current) continue;
        if (next < 0 || mem_of_[g][c] > mem_of_[g][static_cast<std::size_t>(next)] ||
            (mem_of_[g][c] == mem_of_[g][static_cast<std::size_t>(next)] &&
             cost_of_[g][c] < cost_of_[g][static_cast<std::size_t>(next)])) {
          next = static_cast<int>(c);
        }
      }
      if (next < 0) continue;
      worst = g;
      worst_memory = current;
      worst_next = next;
    }
    if (worst == groups_.size()) return result;  // cannot shrink further
    total_memory += mem_of_[worst][static_cast<std::size_t>(worst_next)] - worst_memory;
    result.choice[worst] = worst_next;
  }

  result.feasible = true;
  result.cost = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    result.cost += cost_of_[g][static_cast<std::size_t>(result.choice[g])];
  }
  return result;
}

std::optional<GreedyResult> greedy_warm_start(const ir::Program& program,
                                              const Enumeration& enumeration,
                                              const SynthesisOptions& options,
                                              std::int64_t max_points) {
  const std::size_t dims = enumeration.loop_indices.size();
  if (dims == 0) return std::nullopt;

  // Thin each dimension's log grid so the product stays within budget.
  std::vector<std::vector<std::int64_t>> grids(dims);
  int samples = std::max(
      2, static_cast<int>(std::floor(std::pow(static_cast<double>(max_points),
                                              1.0 / static_cast<double>(dims)))));
  for (std::size_t d = 0; d < dims; ++d) {
    const std::int64_t extent = program.range(enumeration.loop_indices[d]);
    std::vector<std::int64_t> full;
    for (std::int64_t v = 1; v < extent; v *= 2) full.push_back(v);
    full.push_back(extent);
    if (static_cast<int>(full.size()) > samples) {
      std::vector<std::int64_t> thinned;
      const double step =
          static_cast<double>(full.size() - 1) / static_cast<double>(samples - 1);
      for (int k = 0; k < samples; ++k) {
        thinned.push_back(full[static_cast<std::size_t>(std::llround(k * step))]);
      }
      thinned.erase(std::unique(thinned.begin(), thinned.end()), thinned.end());
      full = std::move(thinned);
    }
    grids[d] = std::move(full);
  }

  GreedyEvaluator evaluator(program, enumeration, options);
  std::vector<double> point(dims, 1);
  std::vector<std::size_t> cursor(dims, 0);

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_choice;
  std::vector<double> best_point;
  while (true) {
    for (std::size_t d = 0; d < dims; ++d) {
      point[d] = static_cast<double>(grids[d][cursor[d]]);
    }
    const GreedyEvaluator::PointResult result = evaluator.place(point);
    if (result.feasible && result.cost < best_cost) {
      best_cost = result.cost;
      best_choice = result.choice;
      best_point = point;
    }
    std::size_t d = 0;
    for (; d < dims; ++d) {
      if (++cursor[d] < grids[d].size()) break;
      cursor[d] = 0;
    }
    if (d == dims) break;
  }
  if (best_choice.empty()) return std::nullopt;

  GreedyResult result;
  for (std::size_t d = 0; d < dims; ++d) {
    result.decisions.tile_sizes[enumeration.loop_indices[d]] =
        static_cast<std::int64_t>(best_point[d]);
  }
  result.decisions.option_index = best_choice;
  result.cost = best_cost;
  return result;
}

}  // namespace oocs::core
