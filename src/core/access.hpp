// Candidate I/O placement enumeration (paper §4.1).
//
// For every disk-resident array access the legal positions of its disk
// read/write statements are enumerated on the tiled loop tree:
//
//  * positions run from "immediately above the intra-tile nest" of the
//    accessing statement up toward the root, one per enclosing loop;
//  * a position immediately inside a *redundant* loop (one that does not
//    index the array) is skipped — hoisting past it is never worse;
//  * the upward walk stops as soon as the buffer can no longer fit in
//    memory even with unit tile sizes;
//  * positions inside the intra-tile nest are never generated, which
//    realizes the paper's no-scalar/no-vector rule (in-memory operands
//    stay at least tile-sized so BLAS-style kernels stay efficient);
//  * for writes, a redundant loop above the position forces a
//    read-modify-write of the disk array (plus an initialization pass);
//  * intermediate arrays add an "in memory" option, and their disk
//    read/write positions are confined to the subtree of the lowest
//    common ancestor loop of producer and consumer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "expr/expr.hpp"
#include "trans/tiled.hpp"

namespace oocs::core {

/// Options shared by placement enumeration and NLP construction.
struct SynthesisOptions {
  std::int64_t memory_limit_bytes = std::int64_t{2} * 1024 * 1024 * 1024;
  /// Minimum disk block sizes for efficient I/O (paper Table 1 system:
  /// 2 MB reads, 1 MB writes); capped at the array size for small arrays.
  std::int64_t min_read_block_bytes = std::int64_t{2} * 1024 * 1024;
  std::int64_t min_write_block_bytes = std::int64_t{1} * 1024 * 1024;
  bool enforce_block_constraints = true;
  /// Emit the paper's λ(1−λ)=0 equality constraints in addition to the
  /// integer [0,1] bounds.  Opt-in: the equalities are pure AMPL
  /// fidelity — redundant for our native solvers, which treat λ as
  /// bounded integers — and they enlarge every delta-evaluation
  /// dependency list.
  bool add_binary_equalities = false;
  /// Dominance pruning pre-pass (synthesize() only): drop placement
  /// options that another option of the same group beats-or-ties on
  /// I/O cost, memory footprint, and block-size slack at every sampled
  /// tile size.  Shrinks the NLP (groups pruned to one option lose all
  /// their λ bits) without excluding any optimal plan.
  bool prune_dominated = true;
  /// Seek-awareness refinement: each I/O call adds this many bytes of
  /// equivalent transfer to the objective (seek_time × bandwidth).
  /// 0 reproduces the paper's pure-volume objective; the table benches
  /// set it from the disk model so volume ties break toward fewer,
  /// larger transfers.
  double seek_cost_bytes = 0;
  /// Solver early-cutoff from the communication lower bound
  /// (synthesize() only): compute core::io_lower_bound and let every
  /// solver stop as soon as a feasible incumbent's objective is within
  /// `bound_eps` of the bound — the incumbent is provably near-optimal,
  /// so further search buys at most `bound_eps` relative improvement.
  /// `oocsc --no-bound` turns it off.
  bool bound_cutoff = true;
  /// Relative cutoff slack ε: stop at objective ≤ bound · (1 + ε).
  double bound_eps = 0.02;
  /// Bound-based dominance axis (synthesize() only, with
  /// prune_dominated): additionally drop an option whose box-wide cost
  /// minimum still exceeds a universally block-feasible sibling's
  /// box-wide cost maximum — exact over the whole tile box, so it
  /// prunes pairs the pointwise grid test must keep.
  bool bound_prune = true;
  /// Continuous-relaxation warm start (synthesize() only): solve the
  /// augmented-Lagrangian relaxation of the NLP, round-and-repair it to
  /// the grid, and let the result compete with the greedy sweep (and any
  /// injected near-hit point) for the solver's seed.  The seed choice is
  /// best-of, so turning this on can only improve the starting point;
  /// `oocsc --no-relax` and the PR-5-baseline bench rows turn it off.
  bool relaxation_warm_start = true;
};

/// The in-memory buffer shape of an access: each array dimension is
/// either tile-sized (its tiling loop is above the I/O position) or
/// full-range (its tiling loop is below).
struct BufferShape {
  struct Dim {
    std::string index;
    bool tiled = true;
  };
  std::vector<Dim> dims;

  /// Symbolic byte size: 8 · Π (T_d | N_d).
  [[nodiscard]] expr::Expr bytes(const ir::Program& program) const;
  /// Byte size with all tile sizes forced to 1 (feasibility pruning).
  [[nodiscard]] double min_bytes(const ir::Program& program) const;
  /// "Tm x Nn" style rendering.
  [[nodiscard]] std::string to_string() const;
};

/// Name of the tile-size variable for loop index `i` (e.g. "T_i").
[[nodiscard]] std::string tile_var(const std::string& index);

/// One legal I/O placement for one access.
struct IoCandidate {
  int stmt_id = -1;
  /// I/O placed immediately above the stmt-path loop at this depth.
  int position = 0;
  /// Display label: the loop the I/O sits above ("iI", "mT", or "top").
  std::string label;
  BufferShape buffer;
  /// All tiling loop indices above the position (outermost first).
  std::vector<std::string> loops_above;
  /// Redundant tiling loop indices above the position.
  std::vector<std::string> redundant;
  /// Writes only: accumulation crosses a redundant loop, so the disk
  /// array must be pre-initialized and re-read before each update.
  bool read_required = false;

  /// Bytes moved by this I/O statement over the whole execution:
  /// Size(array) · Π trips(redundant); doubled (+ init pass) when
  /// read_required.
  [[nodiscard]] expr::Expr disk_bytes(const ir::Program& program,
                                      const std::string& array) const;
  /// Number of executions of the I/O call (for seek-cost accounting):
  /// Π trips over *all* loops above the position.
  [[nodiscard]] expr::Expr call_count(const ir::Program& program) const;
};

/// One selectable option of a choice group.
struct ChoiceOption {
  std::string label;
  expr::Expr disk_cost;    // total bytes moved
  expr::Expr memory_cost;  // total buffer bytes while live
  bool in_memory = false;
  /// In-memory options: the resident buffer shape (tile-sized in the
  /// dimensions indexed by loops shared between all accesses).
  BufferShape in_memory_shape;
  /// Concrete placements (codegen): input groups fill one read; output
  /// groups fill `write` (and imply a read when write->read_required);
  /// intermediate disk options fill the write plus one read per
  /// consumer site.
  std::vector<IoCandidate> reads;
  std::optional<IoCandidate> write;
};

/// All options for one array access-group (one per input consumption
/// site, one per output array, one per intermediate array).
struct ChoiceGroup {
  std::string array;
  ir::ArrayKind kind = ir::ArrayKind::Input;
  /// The statement this group's candidates anchor to (consumer site for
  /// inputs, producer for outputs/intermediates).
  int stmt_id = -1;
  std::vector<ChoiceOption> options;

  [[nodiscard]] int num_options() const noexcept { return static_cast<int>(options.size()); }
};

struct Enumeration {
  std::vector<ChoiceGroup> groups;
  /// Loop indices that appear in the tiled program (tile variables).
  std::vector<std::string> loop_indices;
};

/// Runs the §4.1 algorithm over the tiled program.  Throws SpecError for
/// unsupported shapes (e.g. an output produced by several statements).
[[nodiscard]] Enumeration enumerate_placements(const trans::TiledProgram& tiled,
                                               const SynthesisOptions& options);

/// Symbolic I/O call count of one option: all reads plus the write
/// (doubled for read-modify-write accumulation).  Used by the
/// seek-awareness refinement of both synthesis approaches.
[[nodiscard]] expr::Expr option_call_count(const ir::Program& program,
                                           const ChoiceOption& option);

/// Worst (largest) block-size slack over all I/O buffers of one option:
/// max over buffers of min_block − buffer_bytes, with min_block capped
/// at the array size.  Positive ⇒ some buffer violates the minimum
/// block size at that tile point.  Shared by the greedy evaluator and
/// the dominance pruner.
[[nodiscard]] expr::Expr option_block_slack(const ir::Program& program,
                                            const std::string& array,
                                            const ChoiceOption& option,
                                            const SynthesisOptions& options);

/// §4.2 dominance pruning: removes every option that another option of
/// its group beats-or-ties on I/O cost (disk bytes + seek refinement),
/// memory footprint, and block slack at every point of a deterministic
/// log-spaced tile grid (at most `max_points` points; exact ties keep
/// the lower option index).  Returns the number of options removed.
int prune_dominated(const ir::Program& program, Enumeration& enumeration,
                    const SynthesisOptions& options, std::int64_t max_points = 4096);

/// Bound-based dominance axis (SynthesisOptions::bound_prune): removes
/// an option A when a sibling B's cost *maximum* over the whole tile
/// box (attained at all-ones tiles — cost is monotone nonincreasing in
/// every tile size) does not exceed A's cost *minimum* (attained at the
/// full-extent corner), provided B's block slack at the all-ones point
/// is ≤ 0 (slack is monotone nonincreasing, so B is block-feasible at
/// every tiling) and B's memory footprint is pointwise ≤ A's on the
/// sampled grid.  Unlike the pointwise grid test this compares extremes
/// across *different* tile points, so it prunes pairs prune_dominated
/// must keep.  Returns the number of options removed.
int bound_prune_dominated(const ir::Program& program, Enumeration& enumeration,
                          const SynthesisOptions& options, std::int64_t max_points = 4096);

/// Renders the enumeration in the paper's Fig. 4a style.
[[nodiscard]] std::string to_text(const Enumeration& enumeration);

}  // namespace oocs::core
