// End-to-end out-of-core synthesis (the paper's §4 pipeline).
//
//   abstract program ──tile──► tiled tree ──§4.1──► candidate placements
//      ──§4.2──► nonlinear program ──DCS-style solver──► tile sizes + λ
//      ──decode──► concrete OocPlan
//
// The solver is injected so the DLM/CSA/exhaustive engines (and the
// ablation benches) share this front end.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/access.hpp"
#include "core/bounds.hpp"
#include "core/nlp.hpp"
#include "core/plan.hpp"
#include "core/predict.hpp"
#include "solver/auglag.hpp"
#include "solver/problem.hpp"

namespace oocs::core {

struct SynthesisResult {
  OocPlan plan;
  Enumeration enumeration;
  Decisions decisions;
  solver::Solution solution;
  /// Objective at the solution: total predicted disk traffic in bytes.
  double predicted_disk_bytes = 0;
  /// Predicted number of disk I/O calls (for seek-cost accounting).
  double predicted_io_calls = 0;
  /// Direction-split analytical prediction (Table 3's predicted times).
  PredictedIo predicted_io;
  /// Total in-memory buffer bytes at the solution (static model).
  double memory_bytes = 0;
  /// The constructed nonlinear program in AMPL form (DCS input).
  std::string ampl_model;
  /// Wall-clock code-generation time (enumeration + NLP + solve + plan).
  double codegen_seconds = 0;
  /// Placement options removed by the §4.2 dominance pre-pass.
  int pruned_options = 0;
  /// Objective of the greedy warm start the solver was seeded with
  /// (unset when the greedy sweep found nothing feasible).  A correct
  /// solver's feasible incumbent is never worse than this.
  std::optional<double> greedy_cost;
  /// §4.2 objective of an injected warm-start point (set only when a
  /// caller passed one and it mapped onto this program's variables).
  std::optional<double> warm_cost;
  /// True when the injected warm start beat the greedy sweep and seeded
  /// the solver (the plan-cache near-hit path).
  bool warm_start_used = false;
  /// Which warm-start candidate seeded the solver: "greedy", "near_hit",
  /// "relaxation", or "none" when no candidate produced a usable point.
  std::string warm_start_source = "none";
  /// §4.2 objective of the rounded relaxation point (set when the
  /// relaxation warm start ran and rounded to a feasible point).
  std::optional<double> relaxation_cost;
  /// Diagnostics of the relaxation warm-start solve (outer/inner
  /// iterations, KKT residual, rounded-vs-relaxed gap); unset when
  /// SynthesisOptions::relaxation_warm_start is off.
  std::optional<solver::RelaxationStats> relaxation;
  /// Communication lower bound for this program under the memory budget
  /// (max of the compulsory, structural, and HBL floors; see
  /// core/bounds.hpp).  Always computed — the cutoff and prune knobs
  /// only control whether it feeds back into the search.
  IoLowerBound lower_bound;
  /// lower_bound.bytes — proved minimum disk traffic in bytes.
  double io_lower_bound_bytes = 0;
  /// lower_bound / achieved, clamped to [0, 1]; 1 means the plan's
  /// modeled traffic meets the proved floor exactly.
  double bound_efficiency = 0;
  /// Placement options removed by the bound-based dominance axis (a
  /// subset count separate from `pruned_options`).
  int bound_pruned_options = 0;

  /// Chosen option labels per group, e.g. "A: read above nT".
  [[nodiscard]] std::string decisions_to_text() const;
};

/// Runs the full pipeline.  Throws InfeasibleError when no placement /
/// tiling combination satisfies the limits.
///
/// `warm_start` (optional) injects an externally known good point — the
/// plan cache's near-hit path hands in the decisions of a structurally
/// equivalent cached plan.  The injected point competes with the greedy
/// sweep: both are evaluated on the compiled NLP and the solver is
/// seeded from whichever is better (feasible first, then objective), so
/// a warm start can only improve on the cold greedy seeding.  With
/// `warm_start == nullptr` the pipeline is bit-identical to the
/// single-shot path.
[[nodiscard]] SynthesisResult synthesize(const ir::Program& program,
                                         const SynthesisOptions& options,
                                         solver::Solver& solver,
                                         const Decisions* warm_start = nullptr);

/// Convenience: synthesize with a default-configured DLM solver (the
/// paper's DCS role).
[[nodiscard]] SynthesisResult synthesize(const ir::Program& program,
                                         const SynthesisOptions& options = {});

}  // namespace oocs::core
